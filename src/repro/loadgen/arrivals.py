"""Seeded, deterministic arrival processes and hot-key skew.

The load harness is **open-loop**: requests fire at schedule times decided
*before* the run, never paced by server responses -- the arrival process
a production deployment actually faces (a closed loop, where each client
waits for its previous answer, self-throttles exactly when the server
degrades and hides every overload).  A schedule is therefore data: a
seeded list of ``(time, cell)`` pairs built once, hashable, replayable,
and identical across processes and platforms (``random.Random`` is the
Mersenne Twister, stable by contract; nothing here touches wall clocks).

Three arrival processes cover the shapes that matter:

* ``poisson`` -- memoryless open-loop traffic at a constant rate
  (exponential inter-arrival gaps), the null hypothesis of load testing;
* ``bursty`` -- the same mean rate delivered in bursts: short in-burst
  gaps, long quiet gaps, stressing the queue bound and admission control;
* ``ramp`` -- the instantaneous rate climbs linearly across the run
  (slow start to overload), stressing warm-up and backpressure onset.

Hot-key skew is a Zipf distribution over the cells of a scenario
universe (``P(rank r) ~ 1/(r+1)**skew``): with skew > 0 a few cells take
most of the traffic, which is exactly what makes the serving stack's
tier-0 in-flight dedup and tier-1/2 cache hit rates *mean something*
under load.  ``skew=0`` degrades to uniform traffic (every request cold,
caches useless) -- both extremes are worth measuring.

Everything is pure computation; :mod:`repro.loadgen.client` replays a
schedule against a live server.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.utils.validation import require

__all__ = [
    "Arrival",
    "ArrivalSchedule",
    "ARRIVAL_PROCESSES",
    "ZipfCells",
    "build_schedule",
]


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: fire at ``time`` seconds, ask for ``cell``."""

    time: float
    cell: int


@dataclass(frozen=True)
class ArrivalSchedule:
    """A fully-determined open-loop request schedule.

    ``arrivals`` is sorted by time (t=0 is the start of the run); ``cell``
    indexes into whatever scenario universe the replayer pairs the
    schedule with (the load client uses :class:`~repro.scenarios.spec.
    ScenarioGrid` cells in expansion order).
    """

    process: str
    seed: int
    rate: float
    skew: float
    num_cells: int
    arrivals: Tuple[Arrival, ...]

    def __len__(self) -> int:
        return len(self.arrivals)

    def times(self) -> List[float]:
        return [a.time for a in self.arrivals]

    def cells(self) -> List[int]:
        return [a.cell for a in self.arrivals]

    def duration(self) -> float:
        """Time of the last arrival (0.0 for an empty schedule)."""
        return self.arrivals[-1].time if self.arrivals else 0.0

    def unique_cells(self) -> int:
        return len(set(a.cell for a in self.arrivals))

    def dedup_ratio(self) -> float:
        """Fraction of requests repeating an earlier cell (0 when empty).

        The *schedule-side* prediction of how much work the serving
        stack's dedup/cache tiers can eliminate; the load report checks
        the server's counters actually delivered it.
        """
        if not self.arrivals:
            return 0.0
        return 1.0 - self.unique_cells() / len(self.arrivals)

    def signature(self) -> str:
        """sha256 over the canonical schedule content.

        Two schedules with equal signatures are identical request-for-
        request -- the determinism contract (same seed, same parameters,
        any machine) pinned by tests and the benchmark.
        """
        payload = {
            "process": self.process,
            "seed": self.seed,
            "rate": self.rate,
            "skew": self.skew,
            "num_cells": self.num_cells,
            "arrivals": [[repr(a.time), a.cell] for a in self.arrivals],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# hot-key skew
# ---------------------------------------------------------------------------

class ZipfCells:
    """Zipf-distributed cell sampler: ``P(rank r) ~ 1/(r+1)**skew``.

    Rank 0 is the hottest cell; ranks map to cell indices identically
    (the replayer pairs cell 0 with the grid's first expanded spec).
    ``skew=0`` is the uniform distribution.  Sampling is inverse-CDF over
    a precomputed cumulative table (``bisect``), so draws are exactly
    reproducible from the caller's ``random.Random``.
    """

    def __init__(self, num_cells: int, skew: float = 1.1):
        require(num_cells >= 1, "ZipfCells needs at least one cell")
        require(skew >= 0, "skew must be >= 0")
        self.num_cells = num_cells
        self.skew = float(skew)
        weights = [1.0 / math.pow(rank + 1, self.skew)
                   for rank in range(num_cells)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard the fp tail
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw one cell index using ``rng`` (deterministic per rng state)."""
        return bisect.bisect_left(self._cumulative, rng.random())


# ---------------------------------------------------------------------------
# arrival-time processes
# ---------------------------------------------------------------------------

def _poisson_times(rate: float, count: int, rng: random.Random,
                   **_: float) -> List[float]:
    """Open-loop Poisson process: i.i.d. exponential inter-arrival gaps."""
    times: List[float] = []
    now = 0.0
    for _i in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def _bursty_times(rate: float, count: int, rng: random.Random, *,
                  burst_size: int = 4, burst_factor: float = 0.1,
                  **_: float) -> List[float]:
    """Bursts of ``burst_size`` arrivals with compressed in-burst gaps.

    In-burst gaps are exponential at ``rate / burst_factor`` (short);
    the gap *between* bursts is stretched so the mean rate stays ``rate``
    -- same total traffic as ``poisson``, delivered in spikes.
    """
    require(burst_size >= 1, "burst_size must be >= 1")
    require(0 < burst_factor <= 1, "burst_factor must be in (0, 1]")
    times: List[float] = []
    now = 0.0
    # Mean gap budget per arrival is 1/rate; a burst of k arrivals spends
    # (k-1) * burst_factor/rate inside the burst, the rest up front.
    lead_mean = (burst_size - (burst_size - 1) * burst_factor) / rate
    while len(times) < count:
        now += rng.expovariate(1.0 / lead_mean)
        times.append(now)
        for _i in range(burst_size - 1):
            if len(times) >= count:
                break
            now += rng.expovariate(rate / burst_factor)
            times.append(now)
    return times


def _ramp_times(rate: float, count: int, rng: random.Random, *,
                ramp_from: float = 0.25, ramp_to: float = 2.0,
                **_: float) -> List[float]:
    """Linearly ramping rate: ``ramp_from * rate`` up to ``ramp_to * rate``.

    Arrival ``i`` draws its gap at the interpolated instantaneous rate --
    the run starts gentle and ends past nominal load, which is how
    overload (queue growth, admission rejections) actually arrives.
    """
    require(ramp_from > 0 and ramp_to > 0, "ramp endpoints must be positive")
    times: List[float] = []
    now = 0.0
    for index in range(count):
        fraction = index / max(count - 1, 1)
        instantaneous = rate * (ramp_from + (ramp_to - ramp_from) * fraction)
        now += rng.expovariate(instantaneous)
        times.append(now)
    return times


#: Registered arrival processes: name -> times(rate, count, rng, **params).
ARRIVAL_PROCESSES: Dict[str, Callable[..., List[float]]] = {
    "poisson": _poisson_times,
    "bursty": _bursty_times,
    "ramp": _ramp_times,
}


def build_schedule(process: str = "poisson", *, rate: float = 50.0,
                   count: int = 100, num_cells: int = 16,
                   skew: float = 1.1, seed: int = 0,
                   **process_params: float) -> ArrivalSchedule:
    """Build one deterministic schedule: seeded times x seeded Zipf cells.

    ``process`` is a key of :data:`ARRIVAL_PROCESSES`; extra keyword
    parameters go to the process (``burst_size``, ``ramp_to``, ...).
    Times and cell choices come from *independent* seeded generators, so
    changing the skew never perturbs the arrival times (and vice versa)
    -- ablations stay comparable.
    """
    require(process in ARRIVAL_PROCESSES,
            f"unknown arrival process {process!r}; "
            f"known: {sorted(ARRIVAL_PROCESSES)}")
    require(rate > 0, "rate must be positive (requests per second)")
    require(count >= 0, "count must be >= 0")
    time_rng = random.Random(f"times|{seed}")
    cell_rng = random.Random(f"cells|{seed}")
    times = ARRIVAL_PROCESSES[process](rate, count, time_rng,
                                       **process_params)
    sampler = ZipfCells(num_cells, skew)
    arrivals = tuple(Arrival(time=t, cell=sampler.sample(cell_rng))
                     for t in times)
    return ArrivalSchedule(process=process, seed=seed, rate=rate, skew=skew,
                           num_cells=num_cells, arrivals=arrivals)
