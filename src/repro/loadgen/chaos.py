"""Wire-layer fault injection: the chaos knobs of the load harness.

Production clients misbehave in a small number of well-known ways, and a
serving stack's graceful-degradation story is only real once each of them
is *pinned by a test* rather than hoped for:

* **malformed lines** -- truncated/garbage JSON, or valid JSON that is
  not an object.  The server must answer a structured error and keep the
  connection serving (``ServerStats.protocol_errors``).
* **oversized payloads** -- a request line past the server's
  ``max_line_bytes``.  The bytes must be discarded as they stream in
  (never buffered or parsed) and the connection must survive.
* **mid-stream disconnects** -- the client vanishes while its sweep is
  streaming back.  In-flight solves finish and persist; other clients'
  results are unaffected.
* **slow readers** -- the client keeps the connection open but stops
  reading.  With a ``drain_timeout`` the server drops the connection
  instead of pinning response buffers forever.

:class:`ChaosConfig` decides *when* the load client injects which fault
(every k-th arrival, deterministic -- chaos runs are as replayable as
clean ones); the module-level builders produce the actual fault bytes and
are used directly by ``tests/test_serve_chaos.py`` for the fault matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import require

__all__ = [
    "ChaosConfig",
    "malformed_line",
    "non_object_line",
    "oversized_line",
]

#: Fault kinds a chaos-mode request outcome is tagged with.
FAULT_MALFORMED = "chaos-malformed"
FAULT_OVERSIZE = "chaos-oversize"
FAULT_DISCONNECT = "chaos-disconnect"


def malformed_line() -> bytes:
    """A truncated JSON request line (newline-terminated, unparseable)."""
    return b'{"op": "sweep_spec", "id": "chaos", "specs": [{"gen\n'


def non_object_line() -> bytes:
    """A syntactically valid JSON line that is not an object."""
    return b'[1, 2, 3]\n'


def oversized_line(size: int) -> bytes:
    """A single well-formed JSON line of at least ``size`` bytes.

    Deliberately *valid* JSON: it checks the size bound rejects on
    length alone, before any parse is attempted.
    """
    require(size >= 64, "oversized_line wants at least 64 bytes")
    padding = "x" * size
    return (b'{"op": "ping", "id": "chaos-oversize", "pad": "'
            + padding.encode() + b'"}\n')


@dataclass(frozen=True)
class ChaosConfig:
    """When the load client injects which wire fault (0 = never).

    Injection is positional over the arrival index (``index % every ==
    every - 1``), so a seeded schedule plus a chaos config is still a
    fully deterministic run.  A chaos arrival *replaces* its sweep
    request; its outcome is recorded under the fault kind and excluded
    from latency percentiles and server-side reconciliation (the server
    never accepted a sweep for it).
    """

    #: Every k-th arrival sends a malformed JSON line instead.
    malformed_every: int = 0
    #: Every k-th arrival sends an oversized line instead.
    oversize_every: int = 0
    #: Every k-th arrival opens a throwaway connection, starts a sweep
    #: and disconnects without reading its results.
    disconnect_every: int = 0
    #: Bytes of the injected oversized line (must exceed the server's
    #: ``max_line_bytes`` to actually trigger the bound).
    oversize_bytes: int = 1 << 21

    def __post_init__(self) -> None:
        for name in ("malformed_every", "oversize_every", "disconnect_every"):
            require(getattr(self, name) >= 0, f"{name} must be >= 0")
        require(self.oversize_bytes >= 64, "oversize_bytes must be >= 64")

    def fault_for(self, index: int) -> Optional[str]:
        """The fault kind arrival ``index`` should inject, if any.

        Checked in a fixed order (malformed, oversize, disconnect) so
        overlapping cadences stay deterministic.
        """
        if self.malformed_every and index % self.malformed_every == self.malformed_every - 1:
            return FAULT_MALFORMED
        if self.oversize_every and index % self.oversize_every == self.oversize_every - 1:
            return FAULT_OVERSIZE
        if self.disconnect_every and index % self.disconnect_every == self.disconnect_every - 1:
            return FAULT_DISCONNECT
        return None

    @property
    def active(self) -> bool:
        return bool(self.malformed_every or self.oversize_every
                    or self.disconnect_every)
