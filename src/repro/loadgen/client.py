"""Open-loop JSON-lines load client for a live :class:`SweepServer`.

The client replays an :class:`~repro.loadgen.arrivals.ArrivalSchedule`
against a running ``python -m repro.serve`` instance: ``connections``
persistent JSON-lines connections, each arrival fired *at its scheduled
time* (open-loop -- a slow server never slows the arrival process, it
just accumulates in-flight requests) as a single-cell ``sweep_spec``
request.  Per request it records

* **latency** -- send to terminating ``done`` line, wall seconds;
* **outcome** -- report delivered / solve failed / admission-rejected /
  connection lost / timed out;
* **stream integrity** -- exactly one per-cell line and a ``done`` line
  with the right count must arrive, in-order reassembly is checked.

Chaos mode (:class:`~repro.loadgen.chaos.ChaosConfig`) replaces selected
arrivals with wire faults on throwaway connections, so a chaos run
exercises the server's degradation paths *while* normal traffic flows on
the persistent connections.

Cluster mode (``cluster=[RunnerAddress, ...]``) drives a whole
:mod:`repro.cluster` deployment instead of one server: the client keeps
one persistent connection per runner and routes every arrival on the same
consistent-hash ring the cluster router uses (key: the cell's spec
digest), so each cell's traffic lands on the runner whose caches are warm
for it; :func:`run_load` then polls and aggregates ``metrics`` across all
runners, and the report reconciles against the cluster-wide sums.

The module also owns :func:`run_load` -- the one-call harness used by
``python -m repro.loadgen``, the benchmark and the tests: poll the
``metrics`` op, replay the schedule, poll again, and hand both snapshots
to :func:`repro.loadgen.report.build_report` so the report can reconcile
client-side accounting against the server's own counters.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cluster.ring import HashRing
from repro.cluster.runners import RunnerAddress
from repro.loadgen.arrivals import ArrivalSchedule
from repro.loadgen.chaos import (
    FAULT_DISCONNECT,
    FAULT_MALFORMED,
    ChaosConfig,
    malformed_line,
    oversized_line,
)
from repro.loadgen.report import LoadReport, build_report
from repro.scenarios import ScenarioGrid, ScenarioSpec
from repro.serve import request_metrics
from repro.utils.validation import require

__all__ = ["LoadClient", "RequestOutcome", "run_load"]


@dataclass
class RequestOutcome:
    """What one replayed arrival came back as."""

    #: Arrival index in the schedule.
    index: int
    #: Cell index the arrival asked for (-1 for pure wire faults).
    cell: int
    #: ``"sweep"`` for normal traffic, else the injected fault kind.
    kind: str
    #: A report was delivered for the cell.
    ok: bool
    #: The server refused the sweep at its admission limit.
    rejected: bool
    #: Send-to-``done`` wall seconds (faults: send-to-error-line).
    latency_s: float
    #: ``"computed"`` / ``"store"`` from the per-cell line (ok only).
    source: Optional[str] = None
    #: The cell's request fingerprint from the per-cell line (ok only).
    key: Optional[str] = None
    #: Failure/rejection/fault detail.
    error: Optional[str] = None


class _Pending:
    """Response collector for one in-flight request id."""

    __slots__ = ("lines", "event")

    def __init__(self) -> None:
        self.lines: List[Dict[str, Any]] = []
        self.event = asyncio.Event()


class _Connection:
    """One persistent JSON-lines connection with id-routed responses."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.pending: Dict[str, _Pending] = {}
        self.lost: Optional[str] = None
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    self.lost = "server closed the connection"
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    self.lost = "unparseable response line from server"
                    break
                entry = self.pending.get(response.get("id"))
                if entry is None:
                    continue  # e.g. {"id": null} protocol notices
                entry.lines.append(response)
                if (response.get("done") or response.get("rejected")
                        or ("error" in response and response.get("error")
                            and "index" not in response)):
                    entry.event.set()
        except (ConnectionError, OSError) as exc:
            self.lost = f"connection lost: {exc}"
        finally:
            for entry in self.pending.values():
                entry.event.set()

    async def send_line(self, payload: Dict[str, Any]) -> None:
        async with self._write_lock:
            self.writer.write(json.dumps(payload).encode() + b"\n")
            await self.writer.drain()

    async def aclose(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class LoadClient:
    """Replays arrival schedules against one server (see module docs).

    ``time_scale`` multiplies every scheduled arrival time (0 fires the
    whole schedule as fast as the event loop allows -- maximum stress,
    no realism; 1.0 replays in real time).  ``options`` and ``method``
    are passed through to every ``sweep_spec`` request and therefore
    become part of each cell's request fingerprint.

    With ``cluster=`` the client targets N runners instead of one
    server: one persistent connection per runner, each arrival routed by
    consistent hash of its cell's spec digest (``connections`` is then
    ignored -- the cluster topology decides the connection count).

    Cluster membership is **live**: :meth:`add_runner` and
    :meth:`remove_runner` may be called while :meth:`run` is replaying
    (from another task on the same loop).  Arrivals fired after the call
    route on the resized ring; a removed runner's in-flight requests
    finish on their existing connection, which is retired -- closed at
    the end of the replay, not yanked -- so a graceful leave never
    manufactures client-visible failures.
    """

    def __init__(self, *, host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 unix_socket: Optional[str] = None,
                 connections: int = 4,
                 method: str = "auto",
                 options: Optional[Dict[str, Any]] = None,
                 time_scale: float = 1.0,
                 request_timeout: float = 60.0,
                 chaos: Optional[ChaosConfig] = None,
                 cluster: Optional[Sequence[RunnerAddress]] = None):
        require(connections >= 1, "the load client needs >= 1 connection")
        require(time_scale >= 0, "time_scale must be >= 0")
        require(request_timeout > 0, "request_timeout must be positive")
        require(port is not None or unix_socket is not None
                or cluster is not None,
                "LoadClient needs port=, unix_socket= or cluster=")
        self.cluster = list(cluster) if cluster is not None else None
        self._ring: Optional[HashRing] = None
        #: Live per-runner connections while a cluster replay is running
        #: (``None`` outside :meth:`run`); :meth:`remove_runner` parks a
        #: leaver's connection in ``_retired`` until the replay ends.
        self._by_runner: Optional[Dict[str, _Connection]] = None
        self._retired: List[_Connection] = []
        if self.cluster is not None:
            require(len(self.cluster) >= 1, "cluster= needs >= 1 runner")
            names = [r.name for r in self.cluster]
            require(len(set(names)) == len(names),
                    f"duplicate runner names: {sorted(names)}")
            self._ring = HashRing(names)
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.connections = connections
        self.method = method
        self.options = dict(options or {})
        self.time_scale = time_scale
        self.request_timeout = request_timeout
        self.chaos = chaos

    async def _open(self, address: Optional[RunnerAddress] = None
                    ) -> _Connection:
        unix_socket = self.unix_socket
        host, port = self.host, self.port
        if address is not None:
            unix_socket = address.unix_socket
            host, port = address.host, address.port
        if unix_socket:
            reader, writer = await asyncio.open_unix_connection(unix_socket)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return _Connection(reader, writer)

    def _route(self, spec: ScenarioSpec) -> str:
        """The owning runner's name for one cell (cluster mode only)."""
        assert self._ring is not None
        return self._ring.route(spec.cell_digest())

    # -- live membership -----------------------------------------------
    async def add_runner(self, address: RunnerAddress) -> None:
        """Join one runner mid-replay (or before it): resize the client
        ring and, if a replay is live, open its persistent connection now
        so the very next arrival can route to it.

        Call this *after* the cluster router has prewarmed/admitted the
        runner (:meth:`ClusterClient.add_runner
        <repro.cluster.router.ClusterClient.add_runner>`), so traffic
        only shifts once the runner is warm.
        """
        require(self.cluster is not None,
                "add_runner needs a cluster-mode client")
        assert self._ring is not None
        require(address.name not in {r.name for r in self.cluster},
                f"runner {address.name!r} is already in the cluster")
        if self._by_runner is not None:
            self._by_runner[address.name] = await self._open(address)
        self.cluster.append(address)
        self._ring.add(address.name)

    def remove_runner(self, name: str) -> None:
        """Retire one runner mid-replay: resize the ring so no *new*
        arrival routes to it; its in-flight requests finish on the
        existing connection, which is closed when the replay ends.
        """
        require(self.cluster is not None,
                "remove_runner needs a cluster-mode client")
        assert self._ring is not None
        require(name in {r.name for r in self.cluster},
                f"unknown runner {name!r}")
        require(len(self.cluster) > 1,
                "cannot remove the last runner from the cluster")
        self.cluster = [r for r in self.cluster if r.name != name]
        self._ring.remove(name)
        if self._by_runner is not None:
            self._retired.append(self._by_runner.pop(name))

    # ------------------------------------------------------------------
    async def run(self, schedule: ArrivalSchedule,
                  specs: Sequence[ScenarioSpec]) -> List[RequestOutcome]:
        """Replay ``schedule`` over ``specs``; outcomes in arrival order.

        ``specs`` is the cell universe: arrival ``cell`` indexes into it
        (build it from the same grid every run -- expansion order is
        deterministic -- and fingerprints line up across runs and with
        in-process sweeps).
        """
        specs = list(specs)
        require(schedule.num_cells <= len(specs),
                f"schedule addresses {schedule.num_cells} cells but only "
                f"{len(specs)} specs were provided")
        if self.cluster is not None:
            # One persistent connection per runner; arrivals route by the
            # cell's ring placement (the cluster router's placement law),
            # so each cell's traffic keeps hitting its warm runner.  The
            # map lives on the instance so add_runner/remove_runner can
            # resize it mid-replay.
            self._by_runner = {address.name: await self._open(address)
                               for address in self.cluster}

            def pick(index: int, cell: int) -> _Connection:
                assert self._by_runner is not None
                return self._by_runner[self._route(specs[cell])]
        else:
            conns = [await self._open() for _ in range(self.connections)]

            def pick(index: int, cell: int) -> _Connection:
                return conns[index % len(conns)]
        loop = asyncio.get_running_loop()
        started = loop.time()
        tasks: List[asyncio.Task] = []
        try:
            for index, arrival in enumerate(schedule.arrivals):
                delay = (started + arrival.time * self.time_scale
                         - loop.time())
                if delay > 0:
                    await asyncio.sleep(delay)
                fault = (self.chaos.fault_for(index)
                         if self.chaos is not None else None)
                if fault is not None:
                    coro = self._fire_fault(index, arrival.cell, fault,
                                            specs)
                else:
                    coro = self._fire_sweep(pick(index, arrival.cell),
                                            index, arrival.cell,
                                            specs[arrival.cell])
                tasks.append(asyncio.create_task(coro))
            outcomes = list(await asyncio.gather(*tasks))
        finally:
            for task in tasks:
                task.cancel()
            if self.cluster is not None:
                live = self._by_runner or {}
                conns = list(live.values()) + self._retired
                self._by_runner = None
                self._retired = []
            for conn in conns:
                await conn.aclose()
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    # -- normal traffic ------------------------------------------------
    async def _fire_sweep(self, conn: _Connection, index: int, cell: int,
                          spec: ScenarioSpec) -> RequestOutcome:
        request_id = f"lg-{index}"
        entry = _Pending()
        conn.pending[request_id] = entry
        payload = {"op": "sweep_spec", "id": request_id,
                   "specs": [spec.to_payload()],
                   "method": self.method, "options": self.options}
        start = time.perf_counter()
        try:
            await conn.send_line(payload)
            await asyncio.wait_for(entry.event.wait(), self.request_timeout)
        except asyncio.TimeoutError:
            return RequestOutcome(index=index, cell=cell, kind="sweep",
                                  ok=False, rejected=False,
                                  latency_s=time.perf_counter() - start,
                                  error=f"timed out after "
                                        f"{self.request_timeout}s")
        except (ConnectionError, OSError) as exc:
            return RequestOutcome(index=index, cell=cell, kind="sweep",
                                  ok=False, rejected=False,
                                  latency_s=time.perf_counter() - start,
                                  error=f"connection lost: {exc}")
        finally:
            conn.pending.pop(request_id, None)
        latency = time.perf_counter() - start
        return self._classify(index, cell, entry.lines, conn.lost, latency)

    @staticmethod
    def _classify(index: int, cell: int, lines: List[Dict[str, Any]],
                  lost: Optional[str], latency: float) -> RequestOutcome:
        """Turn one request's response lines into a :class:`RequestOutcome`."""
        rejected = next((ln for ln in lines if ln.get("rejected")), None)
        if rejected is not None:
            return RequestOutcome(index=index, cell=cell, kind="sweep",
                                  ok=False, rejected=True, latency_s=latency,
                                  error=rejected.get("error"))
        request_error = next((ln for ln in lines
                              if ln.get("error") and "index" not in ln
                              and not ln.get("done")), None)
        if request_error is not None:
            return RequestOutcome(index=index, cell=cell, kind="sweep",
                                  ok=False, rejected=False, latency_s=latency,
                                  error=f"request error: "
                                        f"{request_error['error']}")
        if lost is not None and not any(ln.get("done") for ln in lines):
            return RequestOutcome(index=index, cell=cell, kind="sweep",
                                  ok=False, rejected=False, latency_s=latency,
                                  error=lost)
        slots = [ln for ln in lines if "index" in ln]
        done = next((ln for ln in lines if ln.get("done")), None)
        if done is None or len(slots) != 1 or done.get("count") != 1 \
                or slots[0].get("index") != 0:
            return RequestOutcome(
                index=index, cell=cell, kind="sweep", ok=False,
                rejected=False, latency_s=latency,
                error=f"stream integrity: {len(slots)} slot lines, "
                      f"done={done!r}")
        slot = slots[0]
        if slot.get("report") is None:
            return RequestOutcome(index=index, cell=cell, kind="sweep",
                                  ok=False, rejected=False, latency_s=latency,
                                  source=slot.get("source"),
                                  key=slot.get("key"),
                                  error=slot.get("error") or "solve failed")
        return RequestOutcome(index=index, cell=cell, kind="sweep", ok=True,
                              rejected=False, latency_s=latency,
                              source=slot.get("source"),
                              key=slot.get("key"))

    # -- chaos traffic -------------------------------------------------
    async def _fire_fault(self, index: int, cell: int, fault: str,
                          specs: Sequence[ScenarioSpec]) -> RequestOutcome:
        """Inject one wire fault on a throwaway connection.

        Malformed/oversized lines expect the server's structured error
        back (the connection surviving is the server's part of the
        contract; the matrix tests assert it).  Disconnects start a real
        sweep and vanish without reading.
        """
        start = time.perf_counter()
        address = None
        if self.cluster is not None:
            # Faults follow the same placement as real traffic: a chaos
            # disconnect's sweep must land on the cell's owning runner.
            address = next(a for a in self.cluster
                           if a.name == self._route(specs[cell]))
        try:
            conn = await self._open(address)
        except (ConnectionError, OSError) as exc:
            return RequestOutcome(index=index, cell=-1, kind=fault, ok=False,
                                  rejected=False,
                                  latency_s=time.perf_counter() - start,
                                  error=f"connect failed: {exc}")
        error: Optional[str] = None
        try:
            if fault == FAULT_DISCONNECT:
                request_id = f"lg-{index}"
                entry = _Pending()
                conn.pending[request_id] = entry
                await conn.send_line({"op": "sweep_spec", "id": request_id,
                                      "specs": [specs[cell].to_payload()],
                                      "method": self.method,
                                      "options": self.options})
                # vanish mid-stream: no reads, just drop the connection
            else:
                raw = (malformed_line() if fault == FAULT_MALFORMED
                       else oversized_line(self.chaos.oversize_bytes))
                async with conn._write_lock:
                    conn.writer.write(raw)
                    await conn.writer.drain()
                probe = _Pending()
                conn.pending[None] = probe  # the error line has id null
                try:
                    await asyncio.wait_for(probe.event.wait(),
                                           self.request_timeout)
                except asyncio.TimeoutError:
                    error = "no protocol-error response before timeout"
        except (ConnectionError, OSError) as exc:
            error = f"connection lost mid-fault: {exc}"
        finally:
            await conn.aclose()
        return RequestOutcome(
            index=index, cell=cell if fault == FAULT_DISCONNECT else -1,
            kind=fault, ok=error is None, rejected=False,
            latency_s=time.perf_counter() - start, error=error)


# ---------------------------------------------------------------------------
# the one-call harness
# ---------------------------------------------------------------------------

async def _poll_metrics(host: str, port: Optional[int],
                        unix_socket: Optional[str],
                        cluster: Optional[Sequence[RunnerAddress]]
                        ) -> Dict[str, Any]:
    """One ``metrics`` snapshot: a single server's, or the cluster sum."""
    if cluster is None:
        return await request_metrics(host=host, port=port,
                                     unix_socket=unix_socket)
    # Imported lazily: the router sits above this module in the layering
    # (it routes *sweeps*; the load client only borrows its aggregation).
    from repro.cluster.router import aggregate_metrics

    snapshots = {address.name: await request_metrics(
                     host=address.host, port=address.port,
                     unix_socket=address.unix_socket)
                 for address in cluster}
    return aggregate_metrics(snapshots)


async def run_load(schedule: ArrivalSchedule,
                   scenarios: Union[ScenarioGrid, Sequence[ScenarioSpec]], *,
                   host: str = "127.0.0.1", port: Optional[int] = None,
                   unix_socket: Optional[str] = None,
                   connections: int = 4, method: str = "auto",
                   options: Optional[Dict[str, Any]] = None,
                   time_scale: float = 1.0, request_timeout: float = 60.0,
                   chaos: Optional[ChaosConfig] = None,
                   cluster: Optional[Sequence[RunnerAddress]] = None
                   ) -> LoadReport:
    """Metrics-before -> replay -> metrics-after -> reconciled report.

    The returned :class:`~repro.loadgen.report.LoadReport` embeds the
    server's full ``metrics`` snapshot and the before/after counter
    deltas alongside the client-side percentiles, so one object answers
    both "what did clients see" and "what did the server actually do".
    With ``cluster=`` the replay routes across the runners (see
    :class:`LoadClient`) and both snapshots are the cluster-wide
    aggregates -- the reconciliation then checks the *sum* of every
    runner's counters against the client's accounting.
    """
    specs = (list(scenarios.expand())
             if isinstance(scenarios, ScenarioGrid) else list(scenarios))
    client = LoadClient(host=host, port=port, unix_socket=unix_socket,
                        connections=connections, method=method,
                        options=options, time_scale=time_scale,
                        request_timeout=request_timeout, chaos=chaos,
                        cluster=cluster)
    before = await _poll_metrics(host, port, unix_socket, cluster)
    start = time.perf_counter()
    outcomes = await client.run(schedule, specs)
    wall = time.perf_counter() - start
    after = await _poll_metrics(host, port, unix_socket, cluster)
    return build_report(schedule, outcomes, before, after, wall)
