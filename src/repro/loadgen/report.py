"""Load-run reports: SLO percentiles, dedup accounting, reconciliation.

A :class:`LoadReport` is the single artifact of one load run.  It folds
together three views of the same traffic and *checks them against each
other*:

* **client-side** -- per-request outcomes from the load client: latency
  percentiles (p50/p95/p99, nearest-rank), ok/failed/rejected counts,
  chaos-fault outcomes, stream-integrity violations;
* **schedule-side** -- what the seeded schedule predicted: request
  count, unique cells, expected dedup ratio;
* **server-side** -- the ``metrics`` op polled before and after the run:
  deltas of the service counters (requests/deduped/store_hits/computed/
  failed/cancelled), wire-layer :class:`~repro.serve.ServerStats`, and
  the persistent store's counters.

:meth:`LoadReport.reconcile` is the consistency gate: the three views
must agree request-for-request (client accepted == server requests
delta; server tiers sum to the delta; rejections match) or the run is
reporting fiction.  :meth:`LoadReport.machine_independent` is the flat
metric dict the benchmark gates on -- counts and ratios only, never
wall-clock numbers, in the ``tools/compare_bench.py`` artifact format.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, TYPE_CHECKING

from repro.loadgen.arrivals import ArrivalSchedule
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (client <-> report)
    from repro.loadgen.client import RequestOutcome

__all__ = ["LoadReport", "build_report", "percentile", "render_report"]

#: Service counters whose before/after delta the report tracks.
SERVICE_COUNTERS = ("requests", "batches", "deduped", "store_hits",
                    "computed", "failed", "cancelled", "shards")
#: Wire-layer counters (``ServerStats``) the report tracks.
SERVER_COUNTERS = ("connections", "requests", "protocol_errors",
                   "oversized_lines", "rejections", "slow_reader_drops")
#: Latency quantiles every report carries (percent).
QUANTILES = (50.0, 95.0, 99.0)


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of ``samples``.

    Nearest-rank (not interpolated) so every reported quantile is an
    actually observed latency -- the convention SLOs are written against.
    Empty input returns ``nan``.
    """
    require(0.0 <= q <= 100.0, "percentile q must be in [0, 100]")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """Everything one load run produced (see module docstring)."""

    #: Schedule identity: process/seed/rate/skew/num_cells/count/signature.
    schedule: Dict[str, Any]
    #: Client-side outcome counts (sweeps only; chaos kept separately).
    counts: Dict[str, int]
    #: Latency milliseconds over delivered sweeps: p50/p95/p99/mean/max.
    latency_ms: Dict[str, float]
    #: Client-observed answer sources (``computed``/``store``/... counts).
    sources: Dict[str, int]
    #: Per-fault-kind ``{"injected": n, "ok": n}`` for chaos arrivals.
    chaos: Dict[str, Dict[str, int]]
    #: Service/server/store counter deltas (after - before).
    server_delta: Dict[str, Any]
    #: Full ``metrics`` snapshot polled after the run.
    snapshot: Dict[str, Any]
    #: Client wall-clock seconds for the whole replay.
    wall_s: float
    #: Problems :func:`build_report` already spotted (stream integrity).
    anomalies: List[str] = field(default_factory=list)

    # -- derived, machine-independent ----------------------------------
    @property
    def dedup_ratio(self) -> float:
        """Observed request dedup: 1 - unique cells / accepted sweeps."""
        accepted = self.counts["accepted"]
        if accepted == 0:
            return 0.0
        return 1.0 - self.schedule["unique_cells"] / accepted

    @property
    def cells_solved(self) -> int:
        """Fresh solves the run caused (service ``computed`` delta)."""
        return int(self.server_delta["service"]["computed"])

    @property
    def cells_per_request(self) -> float:
        """Fresh solves per accepted request -- the dedup win, inverted."""
        accepted = self.counts["accepted"]
        return self.cells_solved / accepted if accepted else 0.0

    def reconcile(self) -> List[str]:
        """Cross-check client accounting against server counters.

        Returns discrepancy descriptions (empty == the run reconciles).
        ``accepted`` counts every sweep the server took on: delivered +
        solve-failed sweeps plus chaos disconnects (their sweeps run to
        completion server-side even though nobody reads the answer).
        Rejected and wire-fault arrivals never reach the service.
        """
        problems = list(self.anomalies)
        service = self.server_delta["service"]
        server = self.server_delta["server"]
        accepted = (self.counts["accepted"]
                    + self.chaos.get("chaos-disconnect", {}).get("injected", 0))
        if service["requests"] != accepted:
            problems.append(
                f"server accepted {service['requests']} sweep slots but the "
                f"client accounts for {accepted}")
        tier_sum = (service["deduped"] + service["store_hits"]
                    + service["computed"] + service["failed"]
                    + service["cancelled"])
        if tier_sum != service["requests"]:
            problems.append(
                f"service tiers sum to {tier_sum} != requests delta "
                f"{service['requests']} "
                f"(deduped={service['deduped']} store_hits="
                f"{service['store_hits']} computed={service['computed']} "
                f"failed={service['failed']} cancelled={service['cancelled']})")
        if server["rejections"] != self.counts["rejected"]:
            problems.append(
                f"server counted {server['rejections']} rejections, client "
                f"saw {self.counts['rejected']}")
        if self.counts["errors"]:
            problems.append(
                f"{self.counts['errors']} sweep request(s) ended in "
                f"client-side errors (timeouts / lost connections)")
        return problems

    def machine_independent(self) -> Dict[str, Any]:
        """Flat, gateable metrics -- no wall-clock values anywhere.

        This is the dict ``benchmarks/bench_serve_load.py`` writes as its
        ``--json`` artifact body, compared by ``tools/compare_bench.py``.
        """
        service = self.server_delta["service"]
        return {
            "schedule_signature": self.schedule["signature"],
            "requests": self.counts["requests"],
            "accepted": self.counts["accepted"],
            "delivered": self.counts["ok"],
            "rejected": self.counts["rejected"],
            "unique_cells": self.schedule["unique_cells"],
            "dedup_ratio": round(self.dedup_ratio, 6),
            "cells_solved": self.cells_solved,
            "cells_per_request": round(self.cells_per_request, 6),
            "shared_hits": int(service["deduped"] + service["store_hits"]),
            "protocol_errors": int(
                self.server_delta["server"]["protocol_errors"]),
            "reconciled": not self.reconcile(),
        }

    # -- serialization -------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict; round-trips through :meth:`from_payload`."""
        return {
            "report_schema": 1,
            "schedule": self.schedule,
            "counts": self.counts,
            "latency_ms": self.latency_ms,
            "sources": self.sources,
            "chaos": self.chaos,
            "server_delta": self.server_delta,
            "snapshot": self.snapshot,
            "wall_s": self.wall_s,
            "anomalies": list(self.anomalies),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "LoadReport":
        require(payload.get("report_schema") == 1,
                f"unsupported report schema {payload.get('report_schema')!r}")
        return cls(schedule=payload["schedule"], counts=payload["counts"],
                   latency_ms=payload["latency_ms"],
                   sources=payload["sources"], chaos=payload["chaos"],
                   server_delta=payload["server_delta"],
                   snapshot=payload["snapshot"], wall_s=payload["wall_s"],
                   anomalies=list(payload.get("anomalies", [])))

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# report construction
# ---------------------------------------------------------------------------

def _counter_delta(before: Dict[str, Any], after: Dict[str, Any],
                   names: Sequence[str]) -> Dict[str, int]:
    return {name: int(after.get(name, 0)) - int(before.get(name, 0))
            for name in names}


def build_report(schedule: ArrivalSchedule,
                 outcomes: Sequence["RequestOutcome"],
                 metrics_before: Dict[str, Any],
                 metrics_after: Dict[str, Any],
                 wall_s: float) -> LoadReport:
    """Fold outcomes + metrics snapshots into one :class:`LoadReport`."""
    sweeps = [o for o in outcomes if o.kind == "sweep"]
    faults = [o for o in outcomes if o.kind != "sweep"]
    ok = [o for o in sweeps if o.ok]
    rejected = [o for o in sweeps if o.rejected]
    failed = [o for o in sweeps if not o.ok and not o.rejected
              and o.source is not None]
    errors = [o for o in sweeps if not o.ok and not o.rejected
              and o.source is None]
    counts = {
        "requests": len(sweeps),
        "ok": len(ok),
        "failed": len(failed),
        "rejected": len(rejected),
        "errors": len(errors),
        "accepted": len(ok) + len(failed),
        "chaos": len(faults),
    }
    latencies = sorted(o.latency_s * 1000.0 for o in ok)
    latency_ms = {f"p{q:g}": round(percentile(latencies, q), 3)
                  for q in QUANTILES}
    latency_ms["mean"] = (round(sum(latencies) / len(latencies), 3)
                          if latencies else math.nan)
    latency_ms["max"] = round(latencies[-1], 3) if latencies else math.nan
    sources: Dict[str, int] = {}
    for outcome in ok:
        source = outcome.source or "unknown"
        sources[source] = sources.get(source, 0) + 1
    chaos: Dict[str, Dict[str, int]] = {}
    for outcome in faults:
        bucket = chaos.setdefault(outcome.kind, {"injected": 0, "ok": 0})
        bucket["injected"] += 1
        bucket["ok"] += int(outcome.ok)
    anomalies = [f"request {o.index} (cell {o.cell}): {o.error}"
                 for o in errors]
    anomalies.extend(f"fault {o.index} ({o.kind}): {o.error}"
                     for o in faults if not o.ok)
    server_delta = {
        "service": _counter_delta(metrics_before["service"],
                                  metrics_after["service"],
                                  SERVICE_COUNTERS),
        "server": _counter_delta(metrics_before["server"],
                                 metrics_after["server"], SERVER_COUNTERS),
        "store": (_counter_delta(metrics_before["store"],
                                 metrics_after["store"],
                                 ("hits", "misses", "writes"))
                  if metrics_before.get("store") is not None
                  and metrics_after.get("store") is not None else None),
    }
    return LoadReport(
        schedule={
            "process": schedule.process, "seed": schedule.seed,
            "rate": schedule.rate, "skew": schedule.skew,
            "num_cells": schedule.num_cells, "count": len(schedule),
            "unique_cells": schedule.unique_cells(),
            "duration_s": round(schedule.duration(), 6),
            "signature": schedule.signature(),
        },
        counts=counts, latency_ms=latency_ms, sources=sources, chaos=chaos,
        server_delta=server_delta, snapshot=metrics_after, wall_s=wall_s,
        anomalies=anomalies)


def render_report(report: LoadReport) -> str:
    """Human-readable report text for the CLI."""
    from repro.analysis.report import format_table

    sched = report.schedule
    lines = [
        f"load run: {sched['count']} requests, process={sched['process']} "
        f"rate={sched['rate']}/s skew={sched['skew']} "
        f"cells={sched['num_cells']} seed={sched['seed']}",
        f"schedule signature: {sched['signature'][:16]}...  "
        f"wall: {report.wall_s:.2f}s",
        "",
        format_table(
            ["outcome", "count"],
            [[name, report.counts[name]]
             for name in ("requests", "ok", "failed", "rejected", "errors",
                          "chaos")]),
        "",
        format_table(
            ["latency (ms)", "value"],
            [[name, report.latency_ms[name]]
             for name in ("p50", "p95", "p99", "mean", "max")]),
        "",
        format_table(
            ["traffic metric", "value"],
            [["dedup ratio", round(report.dedup_ratio, 4)],
             ["unique cells", sched["unique_cells"]],
             ["cells solved (server)", report.cells_solved],
             ["cells per request", round(report.cells_per_request, 4)],
             ["shared hits (dedup+store)",
              report.server_delta["service"]["deduped"]
              + report.server_delta["service"]["store_hits"]],
             ["rejections (server)",
              report.server_delta["server"]["rejections"]],
             ["protocol errors (server)",
              report.server_delta["server"]["protocol_errors"]]]),
    ]
    if report.chaos:
        lines.extend(["", format_table(
            ["chaos fault", "injected", "survived"],
            [[kind, bucket["injected"], bucket["ok"]]
             for kind, bucket in sorted(report.chaos.items())])])
    problems = report.reconcile()
    lines.append("")
    if problems:
        lines.append("RECONCILIATION FAILED:")
        lines.extend(f"  - {problem}" for problem in problems)
    else:
        lines.append("reconciliation: client and server accounting agree")
    return "\n".join(lines)
