"""Data-race substrate: programs, races, race DAGs, reducers and simulators.

This subpackage makes the paper's motivation (Section 1) executable:

* :mod:`~repro.races.program` -- fork-join program model with read / write /
  commutative-update operations;
* :mod:`~repro.races.detector` -- determinacy- and data-race detection;
* :mod:`~repro.races.racedag` -- construction of the race DAG ``D(P)`` and
  its conversion to a tradeoff DAG;
* :mod:`~repro.races.reducer` -- executable recursive-binary and k-way
  reducers validating the duration functions of Section 2;
* :mod:`~repro.races.simulator` -- discrete-event execution backing
  Observation 1.1;
* :mod:`~repro.races.matmul` / :mod:`~repro.races.programs` -- Parallel-MM
  (Figure 3) and further racy kernels.
"""

from repro.races.program import (
    ParallelBlock,
    Program,
    Read,
    SerialBlock,
    Update,
    Write,
    logically_parallel,
)
from repro.races.detector import Race, find_data_races, find_determinacy_races, racy_cells
from repro.races.racedag import DURATION_FAMILIES, RaceDAG, race_dag_from_program, to_tradeoff_dag
from repro.races.reducer import (
    ReducerSimulationResult,
    binary_reducer_formula,
    distribute_updates,
    kway_reducer_formula,
    simulate_binary_reducer,
    simulate_kway_reducer,
    simulate_serialized_updates,
)
from repro.races.simulator import SimulationResult, makespan_upper_bound, simulate_race_dag
from repro.races.matmul import (
    parallel_mm_program,
    parallel_mm_race_dag,
    parallel_mm_running_time,
    parallel_mm_space_used,
    parallel_mm_tradeoff_dag,
)
from repro.races.programs import (
    figure1_counter_program,
    global_sum_program,
    histogram_program,
    sparse_accumulate_program,
)

__all__ = [
    "Program", "SerialBlock", "ParallelBlock", "Read", "Write", "Update", "logically_parallel",
    "Race", "find_determinacy_races", "find_data_races", "racy_cells",
    "RaceDAG", "race_dag_from_program", "to_tradeoff_dag", "DURATION_FAMILIES",
    "ReducerSimulationResult", "simulate_binary_reducer", "simulate_kway_reducer",
    "simulate_serialized_updates", "distribute_updates",
    "binary_reducer_formula", "kway_reducer_formula",
    "SimulationResult", "simulate_race_dag", "makespan_upper_bound",
    "parallel_mm_program", "parallel_mm_race_dag", "parallel_mm_tradeoff_dag",
    "parallel_mm_running_time", "parallel_mm_space_used",
    "figure1_counter_program", "histogram_program", "global_sum_program",
    "sparse_accumulate_program",
]
