"""Determinacy-race and data-race detection (Section 1).

A *determinacy race* occurs when two logically parallel operations access
the same memory cell and at least one of them modifies it.  A *data race*
is the special case in which both conflicting accesses modify the cell (the
case a lock or atomic access can serialise, and a reducer can parallelise
when the updates commute).

The detector below works on the structural fork-join model of
:mod:`repro.races.program`: logical parallelism is read straight off the
block tree, so detection is exact (no scheduling enumeration needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.races.program import LabelledOperation, Program, logically_parallel

__all__ = ["Race", "find_determinacy_races", "find_data_races", "racy_cells"]


@dataclass(frozen=True)
class Race:
    """A single race: two logically parallel conflicting accesses to ``cell``.

    ``kind`` is ``"data"`` when both accesses are writes/updates and
    ``"determinacy"`` when only one of them writes.
    ``reducible`` records whether a reducer could eliminate the race
    (both accesses are commutative updates of the cell).
    """

    cell: Hashable
    first: LabelledOperation
    second: LabelledOperation
    kind: str
    reducible: bool


def _accesses_by_cell(program: Program) -> Dict[Hashable, List[Tuple[LabelledOperation, bool]]]:
    accesses: Dict[Hashable, List[Tuple[LabelledOperation, bool]]] = {}
    for op in program.operations():
        target = op.operation.target
        accesses.setdefault(target, []).append((op, op.operation.writes_target))
        for cell in op.operation.reads:
            accesses.setdefault(cell, []).append((op, False))
    return accesses


def find_determinacy_races(program: Program) -> List[Race]:
    """All determinacy races of ``program`` (data races included)."""
    races: List[Race] = []
    for cell, accesses in _accesses_by_cell(program).items():
        for i in range(len(accesses)):
            op_a, writes_a = accesses[i]
            for j in range(i + 1, len(accesses)):
                op_b, writes_b = accesses[j]
                if not (writes_a or writes_b):
                    continue
                if not logically_parallel(op_a, op_b):
                    continue
                kind = "data" if (writes_a and writes_b) else "determinacy"
                reducible = (
                    writes_a and writes_b
                    and getattr(op_a.operation, "is_commutative", False)
                    and getattr(op_b.operation, "is_commutative", False)
                    and op_a.operation.target == cell
                    and op_b.operation.target == cell
                )
                races.append(Race(cell, op_a, op_b, kind, reducible))
    return races


def find_data_races(program: Program) -> List[Race]:
    """Only the data races (both conflicting accesses modify the cell)."""
    return [r for r in find_determinacy_races(program) if r.kind == "data"]


def racy_cells(program: Program) -> List[Hashable]:
    """The cells involved in at least one data race, in deterministic order."""
    seen: Dict[Hashable, None] = {}
    for race in find_data_races(program):
        seen.setdefault(race.cell, None)
    return list(seen)
