"""Parallel-MM: the iterative matrix-multiplication example (Figure 3).

``Parallel-MM`` multiplies two ``n x n`` matrices with the two outer loops
parallel and the inner ``k`` loop racy: all ``n`` iterations update the same
output cell ``Z[i][j]``.  The paper uses it to show how extra space buys
time: a recursive binary reducer of height ``h`` on every ``Z[i][j]`` brings
the completion time of each cell from ``Theta(n)`` down to
``Theta(n / 2^h + h)`` at a cost of ``n^2 * 2^h`` extra cells.

This module builds the program (for race detection), its race DAG, the
corresponding tradeoff DAG and the closed-form running-time curve, so the
Figure 3-5 experiment can sweep ``h`` and compare against the formula.
"""

from __future__ import annotations


from repro.core.dag import TradeoffDAG
from repro.races.program import ParallelBlock, Program, SerialBlock, Update, Write
from repro.races.racedag import RaceDAG, to_tradeoff_dag
from repro.races.reducer import binary_reducer_formula
from repro.utils.validation import check_positive

__all__ = [
    "parallel_mm_program",
    "parallel_mm_race_dag",
    "parallel_mm_tradeoff_dag",
    "parallel_mm_running_time",
    "parallel_mm_space_used",
]


def parallel_mm_program(n: int) -> Program:
    """Build the Figure 3 program for ``n x n`` matrices.

    The outer ``i`` and ``j`` loops are parallel blocks; the inner ``k``
    loop is a serial block of :class:`~repro.races.program.Update`
    operations on ``Z[i][j]`` -- which is exactly why parallelising it (as a
    nested parallel block) would introduce data races.  To expose the races
    the paper talks about, the inner loop *is* modelled as parallel here:
    the program is the racy variant whose races the reducers remove.
    """
    check_positive(n, "n")
    i_children = []
    for i in range(n):
        j_children = []
        for j in range(n):
            body = [Write(("Z", i, j), ())]
            inner = [
                Update(("Z", i, j), (("X", i, k), ("Y", k, j)))
                for k in range(n)
            ]
            body.append(ParallelBlock(inner))
            j_children.append(SerialBlock(body))
        i_children.append(ParallelBlock(j_children))
    root = ParallelBlock(i_children)
    return Program(root, name=f"Parallel-MM(n={n})")


def parallel_mm_race_dag(n: int) -> RaceDAG:
    """The race DAG of Parallel-MM: every ``Z[i][j]`` receives ``n`` updates.

    Input cells ``X[i][k]`` / ``Y[k][j]`` appear as zero-work sources; every
    output cell has work ``n`` (plus the initialising write, which the paper
    ignores -- we ignore it too by modelling it as work-free).
    """
    check_positive(n, "n")
    dag = RaceDAG()
    for i in range(n):
        for j in range(n):
            target = ("Z", i, j)
            dag.add_cell(target)
            for k in range(n):
                dag.add_dependency(("X", i, k), target)
                dag.add_cell(("Y", k, j))
    return dag


def parallel_mm_tradeoff_dag(n: int, family: str = "binary") -> TradeoffDAG:
    """The tradeoff DAG with one reducer-capable job per output cell."""
    return to_tradeoff_dag(parallel_mm_race_dag(n), family=family)


def parallel_mm_running_time(n: int, height: int) -> float:
    """Running time of Parallel-MM with a height-``h`` reducer on every output cell.

    With unbounded processors all ``n^2`` output cells proceed in parallel,
    so the running time is the per-cell reduction time
    ``ceil(n / 2^h) + h + 1`` (``h = 0`` degenerates to the lock-serialised
    ``n``).
    """
    check_positive(n, "n")
    return binary_reducer_formula(n, height)


def parallel_mm_space_used(n: int, height: int) -> int:
    """Extra space used: ``n^2 * 2^h`` cells (one reducer per output cell)."""
    check_positive(n, "n")
    if height == 0:
        return 0
    return n * n * (2 ** height)
