"""Fork-join parallel program model (Section 1).

The paper motivates the resource-time tradeoff problem with shared-memory
parallel programs whose data races are mitigated by reducers.  To make that
motivation executable we model a small fork-join language:

* a program is a tree of :class:`SerialBlock` / :class:`ParallelBlock`
  nodes whose leaves are memory operations;
* operations are :class:`Read`, :class:`Write` (overwrite with a value
  computed from other cells) and :class:`Update` (commutative/associative
  accumulation into a cell, e.g. ``Z[i][j] += X[i][k] * Y[k][j]``);
* logical parallelism is purely structural: two operations may run in
  parallel iff their lowest common ancestor block is a
  :class:`ParallelBlock` and they live in different children of it.

The model intentionally charges one unit of time per update and zero for
everything else, matching the cost model the paper uses to derive the
duration functions of Section 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple, Union

from repro.utils.validation import require

__all__ = [
    "Cell",
    "Operation",
    "Read",
    "Write",
    "Update",
    "SerialBlock",
    "ParallelBlock",
    "Program",
]

Cell = Hashable


@dataclass(frozen=True)
class Operation:
    """Base class for memory operations.

    Attributes
    ----------
    target:
        The memory cell the operation primarily refers to.
    reads:
        Cells read by the operation (empty for plain reads of ``target``).
    """

    target: Cell
    reads: Tuple[Cell, ...] = ()

    @property
    def writes_target(self) -> bool:
        """Whether the operation modifies ``target``."""
        return False

    def cells_touched(self) -> Tuple[Cell, ...]:
        """All cells read or written by the operation."""
        return (self.target,) + tuple(self.reads)


@dataclass(frozen=True)
class Read(Operation):
    """A read of ``target`` (no modification)."""


@dataclass(frozen=True)
class Write(Operation):
    """An overwriting write of ``target`` using the values of ``reads``."""

    @property
    def writes_target(self) -> bool:
        return True


@dataclass(frozen=True)
class Update(Operation):
    """A commutative, associative update of ``target`` using ``reads``.

    Updates are the operations that reducers can make race-free: they can be
    applied in any order without changing the final value, so distributing
    them over extra cells is safe.
    """

    @property
    def writes_target(self) -> bool:
        return True

    @property
    def is_commutative(self) -> bool:
        return True


Block = Union["SerialBlock", "ParallelBlock", Operation]


@dataclass(frozen=True)
class SerialBlock:
    """Children execute one after the other, in order."""

    children: Tuple[Block, ...]

    def __init__(self, children: Sequence[Block]):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class ParallelBlock:
    """Children are logically parallel with each other."""

    children: Tuple[Block, ...]

    def __init__(self, children: Sequence[Block]):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class LabelledOperation:
    """An operation together with its position in the block tree.

    ``label`` is the sequence of (block kind, child index) pairs from the
    root to the operation; it is what the race detector uses to decide
    logical parallelism.
    """

    index: int
    operation: Operation
    label: Tuple[Tuple[str, int], ...]


class Program:
    """A fork-join program: a root block plus convenience accessors."""

    def __init__(self, root: Block, name: str = "program"):
        self.root = root
        self.name = name

    # ------------------------------------------------------------------
    def operations(self) -> List[LabelledOperation]:
        """All operations in program (serial-elision) order, with labels."""
        result: List[LabelledOperation] = []
        counter = itertools.count()

        def walk(node: Block, label: Tuple[Tuple[str, int], ...]) -> None:
            if isinstance(node, Operation):
                result.append(LabelledOperation(next(counter), node, label))
                return
            if isinstance(node, SerialBlock):
                kind = "S"
            elif isinstance(node, ParallelBlock):
                kind = "P"
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected program node {node!r}")
            for i, child in enumerate(node.children):
                walk(child, label + ((kind, i),))

        walk(self.root, ())
        return result

    def num_operations(self) -> int:
        return len(self.operations())

    def cells(self) -> List[Cell]:
        """All memory cells touched by the program (deterministic order)."""
        seen: dict = {}
        for op in self.operations():
            for cell in op.operation.cells_touched():
                seen.setdefault(cell, None)
        return list(seen)

    def updates_per_cell(self) -> dict:
        """``cell -> number of Write/Update operations targeting it``."""
        counts: dict = {}
        for op in self.operations():
            if op.operation.writes_target:
                counts[op.operation.target] = counts.get(op.operation.target, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({self.name!r}, operations={self.num_operations()})"


def logically_parallel(a: LabelledOperation, b: LabelledOperation) -> bool:
    """Whether two labelled operations may execute in parallel.

    This is decided by the lowest common ancestor of their labels: the
    operations are parallel iff the first position where the labels differ
    is inside a :class:`ParallelBlock`.
    """
    if a.index == b.index:
        return False
    for (kind_a, idx_a), (kind_b, idx_b) in zip(a.label, b.label):
        require(kind_a == kind_b, "labels disagree on block structure")
        if idx_a != idx_b:
            return kind_a == "P"
    # One label is a prefix of the other: same serial chain (an operation and
    # a block containing it) -- never parallel.
    return False
