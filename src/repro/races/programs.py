"""Additional motivating racy programs.

Besides Parallel-MM (Figure 3) the introduction's argument applies to any
kernel whose parallel iterations accumulate into shared cells.  The
generators below produce three such kernels as fork-join programs; they are
used by the examples, the race-detector tests and the Observation-1.1
benchmark:

* **histogram** -- ``n`` items scattered into ``b`` buckets (each bucket is
  a shared counter receiving many commutative updates);
* **global sum** -- the textbook parallel reduction of ``n`` values into a
  single accumulator (the Figure 1 race, at scale);
* **sparse accumulate** -- a CSR-style sparse matrix-vector multiply where
  output entries are updated once per stored non-zero.
"""

from __future__ import annotations


import numpy as np

from repro.races.program import ParallelBlock, Program, SerialBlock, Update, Write
from repro.utils.validation import check_positive, require

__all__ = ["histogram_program", "global_sum_program", "sparse_accumulate_program",
           "figure1_counter_program"]


def figure1_counter_program() -> Program:
    """The two-thread counter increment of Figure 1 (a single data race)."""
    thread1 = Update(("x",), (("x",),))
    thread2 = Update(("x",), (("x",),))
    root = SerialBlock([
        Write(("x",), ()),
        ParallelBlock([thread1, thread2]),
    ])
    return Program(root, name="figure1-counter")


def histogram_program(n_items: int, n_buckets: int, seed: int = 0) -> Program:
    """Parallel histogram: each item updates its bucket counter.

    All items are logically parallel; items mapping to the same bucket race
    with each other (commutative updates, hence reducible).
    """
    check_positive(n_items, "n_items")
    check_positive(n_buckets, "n_buckets")
    rng = np.random.default_rng(seed)
    buckets = rng.integers(0, n_buckets, size=n_items)
    init = [Write(("hist", int(b)), ()) for b in range(n_buckets)]
    body = [Update(("hist", int(buckets[i])), (("item", i),)) for i in range(n_items)]
    root = SerialBlock([SerialBlock(init), ParallelBlock(body)])
    return Program(root, name=f"histogram(n={n_items}, b={n_buckets})")


def global_sum_program(n_values: int) -> Program:
    """Parallel global sum: every value is added to one shared accumulator."""
    check_positive(n_values, "n_values")
    init = Write(("total",), ())
    body = [Update(("total",), (("value", i),)) for i in range(n_values)]
    root = SerialBlock([init, ParallelBlock(body)])
    return Program(root, name=f"global-sum(n={n_values})")


def sparse_accumulate_program(rows: int, cols: int, density: float = 0.3,
                              seed: int = 0) -> Program:
    """Sparse matrix-vector accumulation ``y[i] += A[i, j] * x[j]``.

    Rows are parallel with each other and, inside a row, the stored
    non-zeros update the same output cell ``y[i]`` in parallel -- the same
    race pattern as Parallel-MM but with irregular work per cell.
    """
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    require(0 < density <= 1, "density must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    row_blocks = []
    for i in range(rows):
        nonzeros = [j for j in range(cols) if rng.random() < density]
        if not nonzeros:
            nonzeros = [int(rng.integers(0, cols))]
        body = [Update(("y", i), (("A", i, j), ("x", j))) for j in nonzeros]
        row_blocks.append(SerialBlock([Write(("y", i), ()), ParallelBlock(body)]))
    root = ParallelBlock(row_blocks)
    return Program(root, name=f"sparse-accumulate({rows}x{cols}, density={density})")
