"""Race DAG construction, ``D(P)`` (Section 1).

Under the paper's assumptions (no cyclic read-write dependencies, O(1)
non-update work between successive updates, updates dominating every other
cost) the races of a program are captured by a DAG whose nodes are memory
cells and whose arcs are read-write dependencies: an arc ``x -> y`` means
"``y`` is updated using the value stored at ``x``".  The *work* of a cell is
its in-degree counted with multiplicity -- the number of updates it
receives -- which is also the time needed to apply them serially behind a
lock (Observation 1.1).

:class:`RaceDAG` keeps the multi-arc structure; :func:`race_dag_from_program`
builds it from a fork-join program; :func:`to_tradeoff_dag` converts it into
an activity-on-node :class:`~repro.core.dag.TradeoffDAG` by attaching one of
the paper's duration-function families to every cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.core.dag import TradeoffDAG
from repro.core.duration import (
    ConstantDuration,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
)
from repro.races.program import Program
from repro.utils.ordering import is_acyclic
from repro.utils.validation import require

__all__ = ["RaceDAG", "race_dag_from_program", "to_tradeoff_dag", "DURATION_FAMILIES"]

Cell = Hashable


@dataclass
class RaceDAG:
    """A DAG over memory cells with multi-arc read-write dependencies.

    Attributes
    ----------
    cells:
        All memory cells, in insertion order.
    arcs:
        List of ``(source cell, target cell)`` pairs; repeated pairs
        represent repeated updates (the multiplicity contributes to the
        target's work).
    extra_work:
        Additional updates per cell that do not come from another tracked
        cell (e.g. updates using program constants or read-only inputs);
        they count toward the cell's work but add no precedence arc.
    """

    cells: List[Cell] = field(default_factory=list)
    arcs: List[Tuple[Cell, Cell]] = field(default_factory=list)
    extra_work: Dict[Cell, int] = field(default_factory=dict)

    def add_cell(self, cell: Cell) -> Cell:
        if cell not in self._cell_set():
            self.cells.append(cell)
        return cell

    def _cell_set(self) -> set:
        return set(self.cells)

    def add_dependency(self, source: Cell, target: Cell) -> None:
        """Record one update of ``target`` that reads ``source``."""
        require(source != target, "cyclic self-dependency is not allowed in a race DAG")
        self.add_cell(source)
        self.add_cell(target)
        self.arcs.append((source, target))

    def add_external_update(self, target: Cell, count: int = 1) -> None:
        """Record ``count`` updates of ``target`` from untracked inputs."""
        require(count >= 0, "count must be non-negative")
        self.add_cell(target)
        self.extra_work[target] = self.extra_work.get(target, 0) + count

    # ------------------------------------------------------------------
    def work(self, cell: Cell) -> int:
        """Number of updates received by ``cell`` (its work value ``w_x``)."""
        return sum(1 for _, t in self.arcs if t == cell) + self.extra_work.get(cell, 0)

    def works(self) -> Dict[Cell, int]:
        result = {cell: self.extra_work.get(cell, 0) for cell in self.cells}
        for _, target in self.arcs:
            result[target] += 1
        return result

    def simple_edges(self) -> List[Tuple[Cell, Cell]]:
        """The arc set without multiplicities (used for precedence)."""
        seen: Dict[Tuple[Cell, Cell], None] = {}
        for edge in self.arcs:
            seen.setdefault(edge, None)
        return list(seen)

    def validate(self) -> None:
        require(is_acyclic(self.cells, self.simple_edges()),
                "read-write dependencies form a cycle; the paper's model requires a DAG")

    def makespan_serialized(self) -> float:
        """Makespan when every cell serialises its updates (no reducers).

        This is the longest path where each cell contributes its work, i.e.
        the bound of Observation 1.1 with all durations at ``t(0)``.
        """
        return to_tradeoff_dag(self, family="constant").makespan_value({})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RaceDAG(cells={len(self.cells)}, updates={len(self.arcs)})"


def race_dag_from_program(program: Program) -> RaceDAG:
    """Build ``D(P)`` from a fork-join program.

    Every :class:`~repro.races.program.Write` / ``Update`` of a cell ``y``
    contributes one unit of work to ``y`` and one arc from every cell it
    reads.  Reads of untracked constants contribute work but no arc.
    """
    dag = RaceDAG()
    for labelled in program.operations():
        op = labelled.operation
        if not op.writes_target:
            dag.add_cell(op.target)
            continue
        target = op.target
        dag.add_cell(target)
        if op.reads:
            tracked = [c for c in op.reads if c != target]
            if tracked:
                # one update of `target`: count the work once, attach arcs from
                # every operand; use the first operand for the work-carrying arc
                # and the rest as zero-work precedence-only arcs.
                dag.add_dependency(tracked[0], target)
                for extra in tracked[1:]:
                    dag.add_cell(extra)
                    if (extra, target) not in dag.arcs:
                        # precedence without double-counting work: record via
                        # simple_edges only when absent, contributing one unit.
                        dag.arcs.append((extra, target))
                        dag.extra_work[target] = dag.extra_work.get(target, 0) - 1
            else:
                dag.add_external_update(target)
        else:
            dag.add_external_update(target)
    dag.validate()
    return dag


#: Mapping from family name to a constructor ``work -> DurationFunction``.
DURATION_FAMILIES = {
    "binary": lambda w: RecursiveBinarySplitDuration(int(w)),
    "kway": lambda w: KWaySplitDuration(int(w)),
    "constant": lambda w: GeneralStepDuration([(0, float(w))]),
}


def to_tradeoff_dag(race_dag: RaceDAG, family: str = "binary") -> TradeoffDAG:
    """Convert a race DAG into an activity-on-node tradeoff DAG.

    Every cell becomes a job whose duration function comes from ``family``
    applied to the cell's work (``"binary"`` for recursive binary reducers,
    ``"kway"`` for k-way split reducers, ``"constant"`` for lock-serialised
    updates with no reducer).  A virtual source/sink is added when needed so
    the result always has unique terminals.
    """
    require(family in DURATION_FAMILIES, f"unknown duration family {family!r}")
    build = DURATION_FAMILIES[family]
    dag = TradeoffDAG()
    works = race_dag.works()
    for cell in race_dag.cells:
        w = works.get(cell, 0)
        duration = build(w) if w > 0 else ConstantDuration(0.0)
        dag.add_job(cell, duration)
    for u, v in race_dag.simple_edges():
        dag.add_edge(u, v)
    return dag.ensure_single_source_sink()
