"""Reducer simulators (Figure 2 and the duration functions of Section 2).

The paper derives its two space-time duration functions from explicit
reducer constructions:

* a **recursive binary reducer** of height ``h`` distributes the ``n``
  updates of a shared variable over ``2^h`` leaf cells; when a cell
  finishes it folds into its sibling's survivor (the "become your own
  parent" trick that needs only ``2h`` cells live at a time), and the last
  survivor applies one final update to the shared variable.  With at least
  ``2^h`` processors the total time is ``ceil(n / 2^h) + h + 1``;
* a **k-way split reducer** distributes the ``n`` updates over ``k`` cells
  (time ``ceil(n / k)`` in parallel) and then folds the ``k`` partial values
  into the shared variable serially (time ``k``), for a total of
  ``ceil(n / k) + k``.

The simulators below execute those constructions update by update under the
paper's cost model (one unit per update, everything else free) with an
optional processor limit, so the closed-form duration functions used by the
optimisation layer can be validated against an executable model.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.utils.validation import check_non_negative, check_positive, require

__all__ = [
    "ReducerSimulationResult",
    "distribute_updates",
    "simulate_binary_reducer",
    "simulate_kway_reducer",
    "simulate_serialized_updates",
    "binary_reducer_formula",
    "kway_reducer_formula",
]


@dataclass(frozen=True)
class ReducerSimulationResult:
    """Outcome of a reducer simulation.

    Attributes
    ----------
    completion_time:
        Time at which the shared variable holds its final value.
    updates_applied:
        Total number of unit-cost update operations executed (including the
        folding updates between cells).
    space_used:
        Number of extra cells the construction used.
    processors_used:
        Peak number of simultaneously busy processors.
    """

    completion_time: float
    updates_applied: int
    space_used: int
    processors_used: int


def distribute_updates(n_updates: int, buckets: int) -> List[int]:
    """Split ``n_updates`` as evenly as possible over ``buckets`` cells."""
    require(buckets >= 1, "buckets must be at least 1")
    check_non_negative(n_updates, "n_updates")
    base, extra = divmod(int(n_updates), buckets)
    return [base + (1 if i < extra else 0) for i in range(buckets)]


def simulate_serialized_updates(n_updates: int) -> ReducerSimulationResult:
    """No reducer: the shared variable's lock serialises every update."""
    check_non_negative(n_updates, "n_updates")
    return ReducerSimulationResult(float(n_updates), int(n_updates), 0, 1 if n_updates else 0)


def _parallel_prefix_finish(loads: Sequence[int], processors: Optional[int]) -> List[float]:
    """Finish time of each bucket's local work under a processor limit.

    With unlimited processors every bucket finishes after its own load.
    With ``p`` processors the buckets are list-scheduled greedily (longest
    first), which matches the paper's "at least 2^h processors" assumption
    when ``p`` is large and degrades gracefully otherwise.
    """
    if processors is None or processors >= len(loads):
        return [float(load) for load in loads]
    p = max(1, int(processors))
    heap = [0.0] * p
    heapq.heapify(heap)
    finish = [0.0] * len(loads)
    order = sorted(range(len(loads)), key=lambda i: -loads[i])
    for idx in order:
        if loads[idx] == 0:
            continue
        start = heapq.heappop(heap)
        end = start + float(loads[idx])
        finish[idx] = end
        heapq.heappush(heap, end)
    return finish


def simulate_binary_reducer(n_updates: int, height: int,
                            processors: Optional[int] = None) -> ReducerSimulationResult:
    """Simulate a recursive binary reducer of the given height.

    Parameters
    ----------
    n_updates:
        Number of parallel updates destined for the shared variable.
    height:
        Reducer height ``h``; ``h = 0`` degenerates to lock serialisation.
    processors:
        Optional processor limit; ``None`` means "enough" (>= ``2^h``).

    Returns
    -------
    ReducerSimulationResult
        With enough processors the completion time equals
        ``ceil(n / 2^h) + h + 1`` for ``n >= 1`` (and 0 for ``n = 0``),
        matching Equation 3.
    """
    check_non_negative(n_updates, "n_updates")
    check_non_negative(height, "height")
    if n_updates == 0:
        return ReducerSimulationResult(0.0, 0, 0, 0)
    if height == 0:
        return simulate_serialized_updates(n_updates)

    leaves = 2 ** int(height)
    loads = distribute_updates(n_updates, leaves)
    finish = _parallel_prefix_finish(loads, processors)
    updates = int(n_updates)

    # Fold level by level: the later sibling applies one update into the
    # earlier sibling's survivor (cost 1).  Empty cells (load 0) merge for free.
    while len(finish) > 1:
        merged: List[float] = []
        for i in range(0, len(finish), 2):
            a, b = finish[i], finish[i + 1]
            if loads_nonzero(a) or loads_nonzero(b):
                merged.append(max(a, b) + 1.0)
                updates += 1
            else:
                merged.append(0.0)
        finish = merged
    # Final update of the shared variable by the last survivor.
    completion = finish[0] + 1.0
    updates += 1
    peak = min(leaves, processors) if processors is not None else leaves
    return ReducerSimulationResult(completion, updates, 2 * int(height), int(peak))


def loads_nonzero(finish_time: float) -> bool:
    """A cell participated in the reduction iff it finished after time 0."""
    return finish_time > 0.0


def simulate_kway_reducer(n_updates: int, k: int,
                          processors: Optional[int] = None) -> ReducerSimulationResult:
    """Simulate a k-way split reducer.

    The ``n`` updates are distributed over ``k`` extra cells and applied in
    parallel; the ``k`` partial results are then folded into the shared
    variable one by one (the variable's lock serialises them).  With enough
    processors the completion time is ``ceil(n / k) + k`` for ``k >= 2``,
    matching Equation 2.
    """
    check_non_negative(n_updates, "n_updates")
    check_positive(k, "k")
    if n_updates == 0:
        return ReducerSimulationResult(0.0, 0, 0, 0)
    if k == 1:
        return simulate_serialized_updates(n_updates)
    loads = distribute_updates(n_updates, int(k))
    finish = _parallel_prefix_finish(loads, processors)
    active = [f for f, load in zip(finish, loads) if load > 0]
    # Fold the partial values serially into the shared variable, earliest first.
    clock = 0.0
    updates = int(n_updates)
    for f in sorted(active):
        clock = max(clock, f) + 1.0
        updates += 1
    peak = min(int(k), processors) if processors is not None else int(k)
    return ReducerSimulationResult(clock, updates, int(k), int(peak))


def binary_reducer_formula(n_updates: int, height: int) -> float:
    """Closed form ``ceil(n / 2^h) + h + 1`` (Section 1 / Equation 3)."""
    if n_updates == 0:
        return 0.0
    if height == 0:
        return float(n_updates)
    return float(math.ceil(n_updates / 2 ** height) + height + 1)


def kway_reducer_formula(n_updates: int, k: int) -> float:
    """Closed form ``ceil(n / k) + k`` (Equation 2)."""
    if n_updates == 0:
        return 0.0
    if k <= 1:
        return float(n_updates)
    return float(math.ceil(n_updates / k) + k)
