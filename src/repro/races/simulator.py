"""Discrete-event execution of race DAGs (Observation 1.1).

The paper's makespan model assumes unbounded processors and charges one
unit of time per update, with every outgoing update of a cell triggering as
soon as the cell is fully updated.  This module provides an *executable*
counterpart of that model so that Observation 1.1 ("the running time of the
program is upper-bounded by the makespan of ``D(P)``") can be checked
empirically:

* :func:`simulate_race_dag` runs an event-driven execution in which every
  incoming update of a cell becomes available when its source cell
  completes, and the cell applies available updates one per time unit
  (lock serialisation), optionally through a reducer;
* :func:`makespan_upper_bound` computes the DAG-makespan bound of
  Observation 1.1 for the same configuration.

The simulation is intentionally *at least as constrained* as the analytical
model (updates are applied in arrival order), so its completion time never
exceeds the bound -- the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.core.dag import TradeoffDAG
from repro.races.racedag import RaceDAG, to_tradeoff_dag
from repro.races.reducer import binary_reducer_formula, kway_reducer_formula

__all__ = ["SimulationResult", "simulate_race_dag", "makespan_upper_bound"]

Cell = Hashable


@dataclass
class SimulationResult:
    """Result of one discrete-event execution.

    Attributes
    ----------
    completion_time:
        Time at which the last cell reached its final value.
    cell_completion:
        ``cell -> time at which it became fully updated``.
    total_updates:
        Unit-cost updates executed over the whole run.
    """

    completion_time: float
    cell_completion: Dict[Cell, float] = field(default_factory=dict)
    total_updates: int = 0


def _reducer_time(work: int, assignment, cell: Cell) -> float:
    """Time for a cell to absorb ``work`` updates given its reducer assignment."""
    if work == 0:
        return 0.0
    if assignment is None:
        return float(work)
    spec = assignment.get(cell)
    if spec is None:
        return float(work)
    kind, amount = spec
    if kind == "binary":
        return binary_reducer_formula(work, int(amount))
    if kind == "kway":
        return kway_reducer_formula(work, int(amount))
    raise ValueError(f"unknown reducer kind {kind!r} for cell {cell!r}")


def simulate_race_dag(race_dag: RaceDAG,
                      reducers: Optional[Mapping[Cell, Tuple[str, int]]] = None) -> SimulationResult:
    """Execute ``race_dag`` under the unit-cost update model.

    Parameters
    ----------
    race_dag:
        The dependency structure (cells, update arcs, external updates).
    reducers:
        Optional ``cell -> ("binary", height)`` or ``("kway", k)`` reducer
        assignment; unassigned cells serialise their updates behind a lock.

    Returns
    -------
    SimulationResult

    Notes
    -----
    A cell starts absorbing its updates only once *all* of its incoming
    updates are available (i.e. all predecessor cells completed).  This is
    slightly more conservative than a real runtime, which may start earlier,
    and exactly matches the timing recurrence behind Observation 1.1 -- so
    the simulated completion time never exceeds
    :func:`makespan_upper_bound`.
    """
    race_dag.validate()
    works = race_dag.works()
    preds: Dict[Cell, List[Cell]] = {c: [] for c in race_dag.cells}
    for u, v in race_dag.simple_edges():
        preds[v].append(u)

    order = to_tradeoff_dag(race_dag, family="constant")
    # Topological order over the original cells only (virtual terminals excluded).
    topo = [c for c in order.topological_order() if c in works]

    completion: Dict[Cell, float] = {}
    total_updates = 0
    for cell in topo:
        ready = max((completion[p] for p in preds[cell]), default=0.0)
        duration = _reducer_time(works[cell], reducers, cell)
        completion[cell] = ready + duration
        total_updates += works[cell]
    makespan = max(completion.values(), default=0.0)
    return SimulationResult(makespan, completion, total_updates)


def makespan_upper_bound(race_dag: RaceDAG,
                         reducers: Optional[Mapping[Cell, Tuple[str, int]]] = None) -> float:
    """The Observation-1.1 makespan bound for the same reducer assignment.

    Each cell contributes the duration of absorbing its updates through its
    reducer (or its full work when serialised); the bound is the longest
    path of those durations through ``D(P)``.
    """
    works = race_dag.works()
    dag = TradeoffDAG()
    from repro.core.duration import GeneralStepDuration, ConstantDuration

    for cell in race_dag.cells:
        duration = _reducer_time(works[cell], reducers, cell)
        dag.add_job(cell, GeneralStepDuration([(0, duration)]) if duration > 0
                    else ConstantDuration(0.0))
    for u, v in race_dag.simple_edges():
        dag.add_edge(u, v)
    dag = dag.ensure_single_source_sink()
    return dag.makespan_value({})
