"""Declarative scenario production: generator registry, specs and grids.

The scenario subsystem makes experiment *inputs* first-class the way the
engine made solvers first-class (PR 1): DAG generators register in a
capability registry (:mod:`~repro.scenarios.registry`), a scenario is a
JSON-serializable :class:`ScenarioSpec` record ``(generator, params, seed,
objective, budget_rule)``, and whole sweeps are :class:`ScenarioGrid`
cross-products expanded lazily -- reproducible from identifiers alone and
cheap enough to ship over the serve wire instead of materialized DAG
payloads.

The layers above consume specs natively: :mod:`repro.engine.fingerprint`
resolves a spec to the exact request fingerprint its materialized problem
would get (memoized, store-aliased -- warm lookups build no DAG),
:class:`~repro.engine.service.SweepService` /
:class:`~repro.engine.async_service.AsyncSweepService` dedup and answer
store hits pre-materialization and hand pending cells to workers that
build DAGs lazily inside their shard, and ``python -m repro.serve``
accepts ``sweep_spec`` requests.  See ``docs/scenarios.md``.

>>> from repro.scenarios import Axis, ScenarioGrid
>>> grid = ScenarioGrid(
...     generators=({"generator": "fork-join",
...                  "params": {"width": Axis([2, 4]), "work": 16}},),
...     seeds=(0,), budget_rules=(("const", 4.0), ("const", 8.0)))
>>> grid.size()
4
>>> [spec.params["width"] for spec in grid.expand()]
[2, 2, 4, 4]
"""

from repro.scenarios.registry import (
    GeneratorSpec,
    generator_ids,
    generator_specs,
    get_generator,
    register_generator,
    unregister_generator,
    validate_params,
)
from repro.scenarios.spec import (
    Axis,
    BUDGET_RULE_NAMES,
    GridDiff,
    OBJECTIVES,
    ScenarioGrid,
    ScenarioSpec,
    derive_cell_seed,
    grid_diff,
    materialization_info,
    normalize_budget_rule,
    reset_materialization_counters,
)
from repro.scenarios.adversarial import (
    arc_dag_to_tradeoff_dag,
    matching3d_gadget_dag,
    minresource_chain_dag,
    partition_gadget_dag,
)

# Importing the module registers every built-in generator family.
import repro.scenarios.builtin  # noqa: F401  (side-effect import)

__all__ = [
    # registry
    "GeneratorSpec", "register_generator", "unregister_generator",
    "get_generator", "generator_ids", "generator_specs", "validate_params",
    # specs + grids
    "ScenarioSpec", "ScenarioGrid", "Axis",
    "GridDiff", "grid_diff",
    "BUDGET_RULE_NAMES", "OBJECTIVES", "normalize_budget_rule",
    "derive_cell_seed",
    "materialization_info", "reset_materialization_counters",
    # adversarial families
    "arc_dag_to_tradeoff_dag", "partition_gadget_dag",
    "minresource_chain_dag", "matching3d_gadget_dag",
]
