"""Hardness-derived adversarial scenario families.

The Section 4 reductions (:mod:`repro.hardness`) are the paper's designed
worst cases: forced-supply arcs, exclusive choices and penalty durations
that punish any solver routing resource greedily.  Sweeps that only ever
see benign layered / fork-join instances overstate solver quality, so this
module turns the two fully-constructive gadget builders into registered
scenario generators -- one grid can then mix benign and worst-case cells.

The gadget builders emit activity-on-*arc* DAGs
(:class:`~repro.core.arcdag.ArcDAG`); scenario generators must produce the
engine's activity-on-node :class:`~repro.core.dag.TradeoffDAG`.
:func:`arc_dag_to_tradeoff_dag` is the faithful conversion (one job per
arc, precedence between consecutive arcs -- the inverse direction of the
Section 2 node-to-arc transformation), so the adversarial families reuse
the verified hardness constructions instead of re-implementing them.

Two families are registered by :mod:`repro.scenarios.builtin`:

* ``adversarial-partition`` -- the Theorem 4.6 Partition gadget
  (:func:`repro.hardness.partition.build_partition_dag`) over seeded random
  element values: two accumulating chains of exclusive choice arcs behind
  big-M forced-supply durations;
* ``adversarial-minresource-chain`` -- the Theorem 4.4 / Figure 10 chained
  variable gadgets
  (:func:`repro.hardness.minresource_chain.build_variable_chain`): a single
  unit of resource must walk the whole chain on time or pay big-M;
* ``adversarial-3dm`` -- the Theorem 4.5 numerical 3-dimensional matching
  gadget (:func:`repro.hardness.matching3d.build_matching3d_dag`) over
  seeded triple values: two cascaded bipartite matchers whose exclusive
  choices must realise a perfect numerical matching or pay big-M;
* ``adversarial-sat`` -- the Theorem 4.1 / Lemma 4.2 1-in-3SAT reduction
  (:func:`repro.hardness.gadgets_general.build_theorem41_dag`) over seeded
  formulas: variable and clause gadgets whose exclusive choices encode a
  truth assignment, reaching the target makespan iff exactly one literal
  per clause is satisfied.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.arcdag import ArcDAG
from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration
from repro.utils.validation import check_positive

__all__ = [
    "arc_dag_to_tradeoff_dag",
    "partition_gadget_dag",
    "minresource_chain_dag",
    "matching3d_gadget_dag",
    "sat_gadget_dag",
    "partition_values",
    "matching3d_values",
    "sat_values",
]

#: Job names for the unique terminals added around the converted arcs.
SOURCE_JOB = "source"
SINK_JOB = "sink"


def arc_dag_to_tradeoff_dag(arc_dag: ArcDAG) -> TradeoffDAG:
    """Convert an activity-on-arc DAG into an equivalent node DAG.

    Every arc becomes a job named by its ``arc_id`` carrying the arc's
    duration function, with a precedence edge between consecutive arcs
    (``a`` before ``b`` whenever ``head(a) == tail(b)``).  Source-to-sink
    arc paths map one-to-one onto job paths, so path-reuse resource
    routing is preserved.  Explicit zero-duration ``source`` / ``sink``
    jobs bracket the arcs leaving the arc DAG's source and entering its
    sink, keeping the terminals unique (and the job names strings, as the
    serve wire codec requires).
    """
    dag = TradeoffDAG()
    dag.add_job(SOURCE_JOB, ConstantDuration(0.0))
    dag.add_job(SINK_JOB, ConstantDuration(0.0))
    arcs = arc_dag.arcs
    for arc in arcs:
        dag.add_job(arc.arc_id, arc.duration)
    by_tail: dict = {}
    for arc in arcs:
        by_tail.setdefault(arc.tail, []).append(arc.arc_id)
    for arc in arcs:
        if arc.tail == arc_dag.source:
            dag.add_edge(SOURCE_JOB, arc.arc_id)
        if arc.head == arc_dag.sink:
            dag.add_edge(arc.arc_id, SINK_JOB)
        for successor in by_tail.get(arc.head, ()):
            dag.add_edge(arc.arc_id, successor)
    dag.validate()
    return dag


def partition_values(num_values: int, max_value: int, seed: int) -> Tuple[int, ...]:
    """Deterministic seeded element values for the Partition gadget.

    Half the seeds produce partitionable multisets (an even total is
    forced by flipping one element's parity), so sweeps over a seed axis
    see both yes- and no-instances of the reduction.
    """
    check_positive(num_values, "num_values")
    check_positive(max_value, "max_value")
    rng = np.random.default_rng(seed)
    values = [int(rng.integers(1, max_value + 1)) for _ in range(num_values)]
    if seed % 2 == 0 and sum(values) % 2 == 1:
        values[0] += 1 if values[0] < max_value else -1
    return tuple(values)


def partition_gadget_dag(num_values: int = 4, max_value: int = 7,
                         seed: int = 0,
                         values: Optional[Tuple[int, ...]] = None) -> TradeoffDAG:
    """The Theorem 4.6 Partition reduction as an adversarial node DAG.

    ``values`` overrides the seeded draw (the explicit-instance hook used
    by tests); otherwise :func:`partition_values` draws ``num_values``
    elements in ``[1, max_value]`` from ``seed``.  With budget
    ``sum(values)`` the optimum makespan is ``sum(values) / 2`` iff the
    multiset is partitionable -- greedy and rounding solvers that misroute
    the forced supply pay big-M.
    """
    from repro.hardness.partition import PartitionInstance, build_partition_dag

    if values is None:
        values = partition_values(num_values, max_value, seed)
    construction = build_partition_dag(PartitionInstance(tuple(values)))
    return arc_dag_to_tradeoff_dag(construction.arc_dag)


def matching3d_values(n: int, max_value: int, seed: int
                      ) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Deterministic seeded triple values for the numerical 3DM gadget.

    Draws ``n`` values per side in ``[1, max_value]`` and then raises the
    last ``c`` element just enough to make the grand total divisible by
    ``n`` -- the well-formedness condition
    :class:`~repro.hardness.matching3d.Numerical3DMInstance` enforces.
    """
    check_positive(n, "n")
    check_positive(max_value, "max_value")
    rng = np.random.default_rng(seed)
    a = [int(rng.integers(1, max_value + 1)) for _ in range(n)]
    b = [int(rng.integers(1, max_value + 1)) for _ in range(n)]
    c = [int(rng.integers(1, max_value + 1)) for _ in range(n)]
    c[-1] += (-(sum(a) + sum(b) + sum(c))) % n
    return tuple(a), tuple(b), tuple(c)


def matching3d_gadget_dag(n: int = 2, max_value: int = 5, seed: int = 0,
                          values: Optional[Tuple[Tuple[int, ...],
                                                 Tuple[int, ...],
                                                 Tuple[int, ...]]] = None
                          ) -> TradeoffDAG:
    """The Theorem 4.5 numerical 3DM reduction as an adversarial node DAG.

    ``values`` overrides the seeded draw with explicit ``(a, b, c)``
    triples (the explicit-instance hook used by tests); otherwise
    :func:`matching3d_values` draws them from ``seed``.  The gadget
    cascades two bipartite matchers (A-to-B, then AB-to-C); only a
    resource routing that realises a perfect matching with every triple
    summing to the target ``T`` reaches the designed makespan -- any
    misrouted choice arc pays big-M.  Gadget size grows as ``n**2``
    matcher arcs per stage, so keep ``n`` small inside grids.
    """
    from repro.hardness.matching3d import Numerical3DMInstance, build_matching3d_dag

    if values is None:
        values = matching3d_values(n, max_value, seed)
    a, b, c = values
    construction = build_matching3d_dag(
        Numerical3DMInstance(tuple(a), tuple(b), tuple(c)))
    return arc_dag_to_tradeoff_dag(construction.arc_dag)


def sat_values(num_variables: int, num_clauses: int, seed: int
               ) -> Tuple[Tuple[int, int, int], ...]:
    """Deterministic seeded clauses for the 1-in-3SAT gadget.

    Even seeds plant a 1-in-3 satisfying assignment
    (:func:`repro.hardness.sat.satisfiable_one_in_three_sat`); odd seeds
    draw uniformly random clauses
    (:func:`repro.hardness.sat.random_one_in_three_sat`), so sweeps over a
    seed axis see both yes-instances and unconstrained formulas of the
    reduction.
    """
    check_positive(num_variables, "num_variables")
    check_positive(num_clauses, "num_clauses")
    from repro.hardness.sat import (
        random_one_in_three_sat,
        satisfiable_one_in_three_sat,
    )

    if seed % 2 == 0:
        instance, _ = satisfiable_one_in_three_sat(num_variables,
                                                   num_clauses, seed)
    else:
        instance = random_one_in_three_sat(num_variables, num_clauses, seed)
    return tuple(instance.clauses)


def sat_gadget_dag(num_variables: int = 3, num_clauses: int = 2,
                   seed: int = 0,
                   clauses: Optional[Tuple[Tuple[int, int, int], ...]] = None
                   ) -> TradeoffDAG:
    """The Theorem 4.1 / Lemma 4.2 1-in-3SAT reduction as a node DAG.

    ``clauses`` overrides the seeded draw with explicit signed-literal
    triples (the explicit-instance hook used by tests); otherwise
    :func:`sat_values` draws them from ``seed``.  With budget ``n + 2m``
    the optimum makespan is the Lemma 4.2 target (1) iff the formula is
    1-in-3 satisfiable -- every truth assignment is an exclusive routing
    of the variable gadgets, and any clause without exactly one true
    literal pays big-M.  Gadget size is ``6n + 10m`` vertices, so keep
    ``num_variables``/``num_clauses`` small inside grids.
    """
    from repro.hardness.gadgets_general import build_theorem41_dag
    from repro.hardness.sat import OneInThreeSatInstance

    if clauses is None:
        clauses = sat_values(num_variables, num_clauses, seed)
    instance = OneInThreeSatInstance(num_variables,
                                     tuple(tuple(c) for c in clauses))
    construction = build_theorem41_dag(instance)
    return arc_dag_to_tradeoff_dag(construction.arc_dag)


def minresource_chain_dag(num_variables: int = 4,
                          big_m: Optional[float] = None) -> TradeoffDAG:
    """The Figure 10 chained variable gadgets as an adversarial node DAG.

    A single expedited unit must traverse every gadget of the chain on
    schedule (entry of gadget ``i`` at time ``i - 1``); any solver that
    fails to thread one unit through the whole chain pays the big-M
    penalty on a link arc.  The construction is deterministic in
    ``num_variables`` (and ``big_m``), so the generator is unseeded.
    """
    from repro.hardness.minresource_chain import build_variable_chain

    construction = build_variable_chain(num_variables, big_m=big_m)
    return arc_dag_to_tradeoff_dag(construction.arc_dag)
