"""Registration of the built-in scenario generator families.

Importing this module (``repro.scenarios`` does it) populates the
generator registry with the benign families from :mod:`repro.generators`
-- fork-join, staged fork-join, layered random, chain, random / balanced
series-parallel -- plus the two hardness-derived adversarial families of
:mod:`repro.scenarios.adversarial`.  The underlying builder functions are
imported lazily inside each build callable: ``repro.generators`` itself
depends on this package (its workload catalog is written as scenario
specs), and the lazy imports keep the two packages importable in either
order.
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.registry import register_generator

__all__: list = []

_FAMILY = {"type": "str", "default": "binary",
           "choices": ("general", "binary", "kway")}


@register_generator(
    "fork-join",
    summary="one fork-join: width independent equal-work jobs (Parallel-MM shape)",
    families=("binary", "kway"),
    params_schema={
        "width": {"type": "int", "required": True},
        "work": {"type": "int", "required": True},
        "family": {"type": "str", "default": "binary",
                   "choices": ("binary", "kway")},
    })
def _build_fork_join(**params: Any):
    from repro.generators.fork_join import fork_join_dag

    return fork_join_dag(**params)


@register_generator(
    "staged-fork-join",
    summary="several fork-join stages in series (pipelined parallel loops)",
    families=("general", "binary", "kway"),
    seeded=True,
    params_schema={
        "stage_widths": {"type": "seq", "required": True},
        "work": {"type": "int", "required": True},
        "family": _FAMILY,
    })
def _build_staged_fork_join(**params: Any):
    from repro.generators.fork_join import staged_fork_join_dag

    return staged_fork_join_dag(**params)


@register_generator(
    "layered-random",
    summary="layered random DAG with forward edges between consecutive layers",
    families=("general", "binary", "kway"),
    seeded=True,
    params_schema={
        "num_layers": {"type": "int", "required": True},
        "jobs_per_layer": {"type": "int", "required": True},
        "family": {"type": "str", "default": "general",
                   "choices": ("general", "binary", "kway")},
        "edge_probability": {"type": "float", "default": 0.5},
        "max_base": {"type": "int", "default": 40},
    })
def _build_layered_random(**params: Any):
    from repro.generators.random_dag import layered_random_dag

    return layered_random_dag(**params)


@register_generator(
    "chain",
    summary="a single chain of jobs (the extreme case for path reuse)",
    families=("general", "binary", "kway"),
    seeded=True,
    params_schema={
        "lengths": {"type": "seq", "required": True},
        "family": _FAMILY,
    })
def _build_chain(**params: Any):
    from repro.generators.random_dag import chain_dag

    return chain_dag(**params)


@register_generator(
    "sp-random",
    summary="random series-parallel DAG (Section 3.4 DP territory)",
    families=("general", "binary", "kway"),
    seeded=True,
    params_schema={
        "num_jobs": {"type": "int", "required": True},
        "family": _FAMILY,
        "series_probability": {"type": "float", "default": 0.5},
        "max_base": {"type": "int", "default": 40},
    })
def _build_sp_random(**params: Any):
    from repro.generators.series_parallel_gen import random_sp_tree

    return random_sp_tree(**params).to_dag()


@register_generator(
    "sp-balanced",
    summary="balanced series-parallel DAG of a given depth",
    families=("general", "binary", "kway"),
    seeded=True,
    params_schema={
        "depth": {"type": "int", "required": True},
        "family": _FAMILY,
        "max_base": {"type": "int", "default": 40},
        "alternate": {"type": "bool", "default": True},
    })
def _build_sp_balanced(**params: Any):
    from repro.generators.series_parallel_gen import balanced_sp_tree

    return balanced_sp_tree(**params).to_dag()


@register_generator(
    "adversarial-partition",
    summary="Theorem 4.6 Partition gadget: forced supply + exclusive choice chains",
    families=("general",),
    seeded=True,
    adversarial=True,
    params_schema={
        "num_values": {"type": "int", "default": 4},
        "max_value": {"type": "int", "default": 7},
    })
def _build_adversarial_partition(**params: Any):
    from repro.scenarios.adversarial import partition_gadget_dag

    return partition_gadget_dag(**params)


@register_generator(
    "adversarial-3dm",
    summary="Theorem 4.5 numerical 3DM gadget: cascaded bipartite matchers",
    families=("general",),
    seeded=True,
    adversarial=True,
    params_schema={
        "n": {"type": "int", "default": 2},
        "max_value": {"type": "int", "default": 5},
    })
def _build_adversarial_3dm(**params: Any):
    from repro.scenarios.adversarial import matching3d_gadget_dag

    return matching3d_gadget_dag(**params)


@register_generator(
    "adversarial-sat",
    summary="Theorem 4.1 1-in-3SAT gadget: variable/clause exclusive choices",
    families=("general",),
    seeded=True,
    adversarial=True,
    params_schema={
        "num_variables": {"type": "int", "default": 3},
        "num_clauses": {"type": "int", "default": 2},
    })
def _build_adversarial_sat(**params: Any):
    from repro.scenarios.adversarial import sat_gadget_dag

    return sat_gadget_dag(**params)


@register_generator(
    "adversarial-minresource-chain",
    summary="Theorem 4.4 chained variable gadgets: one unit must walk the chain",
    families=("general",),
    adversarial=True,
    params_schema={
        "num_variables": {"type": "int", "default": 4},
    })
def _build_adversarial_minresource_chain(**params: Any):
    from repro.scenarios.adversarial import minresource_chain_dag

    return minresource_chain_dag(**params)
