"""The scenario-generator registry: declarative instance production.

Mirroring the solver registry (:mod:`repro.engine.registry`), every DAG
generator registers itself here with a :class:`GeneratorSpec`: a stable
``generator_id``, the duration families it can emit, a ``params_schema``
describing (and defaulting) its keyword parameters, and the build callable.
A registered generator is reproducible *from its identifier and parameters
alone* -- the property :class:`~repro.scenarios.spec.ScenarioSpec` builds
on to make whole experiment sweeps shippable as a few hundred bytes of
JSON instead of materialized DAG payloads.

Schema entries are small dicts::

    params_schema={
        "width":  {"type": "int", "required": True},
        "family": {"type": "str", "default": "binary",
                   "choices": ("general", "binary", "kway")},
        "lengths": {"type": "seq"},     # JSON array; canonicalised to tuple
    }

``validate_params`` checks types / choices, rejects unknown keys, fills
defaults and returns a canonical plain-JSON mapping (sequences as lists),
so two specs describing the same cell always hash identically.  The
``seed`` parameter is special: generators declare ``seeded=True`` instead
of putting ``seed`` in the schema, and the spec's own ``seed`` field is
injected at build time -- a seed can never hide inside ``params`` where
grid expansion would not see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.utils.validation import require

__all__ = [
    "GeneratorSpec",
    "register_generator",
    "unregister_generator",
    "get_generator",
    "generator_ids",
    "generator_specs",
    "validate_params",
]

#: Schema value types understood by :func:`validate_params`.
_PARAM_TYPES: Dict[str, tuple] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "seq": (list, tuple),
}


@dataclass(frozen=True)
class GeneratorSpec:
    """Capability record of one registered scenario generator.

    Attributes
    ----------
    generator_id:
        Stable identifier used by :class:`~repro.scenarios.spec.ScenarioSpec`
        payloads, docs and the serve wire protocol.
    summary:
        One-line human-readable description.
    families:
        Duration families the generator can emit (subset of
        ``{"general", "binary", "kway", "constant"}``); informational --
        sweep tables group on it.
    params_schema:
        ``name -> {"type", "default"?, "required"?, "choices"?}`` (see
        module docstring).  Parameters outside the schema are rejected.
    seeded:
        Does the build callable accept a ``seed=`` keyword?  When true the
        spec's ``seed`` field is forwarded; when false a non-zero spec seed
        is rejected (it would silently not vary the instance).
    adversarial:
        Is this a hardness-derived worst-case family (kept out of the
        "benign" defaults in docs and examples)?
    build:
        ``(**params) -> TradeoffDAG``; must be deterministic in its
        parameters (and ``seed``), or content-addressed caching above it
        breaks.
    """

    generator_id: str
    summary: str
    families: frozenset
    params_schema: Mapping[str, Mapping[str, Any]]
    seeded: bool
    adversarial: bool = False
    build: Callable = field(repr=False, default=None)

    def validate_params(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Canonical, defaulted parameter mapping for this generator."""
        return validate_params(self.generator_id, self.params_schema, params)

    def build_dag(self, params: Mapping[str, Any], seed: int = 0):
        """Build the DAG for validated ``params`` (+ ``seed`` if seeded)."""
        canonical = self.validate_params(params)
        if self.seeded:
            return self.build(seed=seed, **canonical)
        require(seed == 0,
                f"generator {self.generator_id!r} is unseeded; a spec seed "
                f"of {seed} would not vary the instance")
        return self.build(**canonical)


def validate_params(generator_id: str, schema: Mapping[str, Mapping[str, Any]],
                    params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate ``params`` against ``schema``; return the canonical mapping.

    Unknown keys, missing required keys, type mismatches and out-of-choice
    values raise :class:`~repro.utils.validation.ValidationError`.
    Defaults are filled in, sequences are canonicalised to lists (the JSON
    form) and the result is key-sorted -- the stable shape
    :meth:`~repro.scenarios.spec.ScenarioSpec.cell_digest` hashes.
    """
    require(isinstance(params, Mapping),
            f"generator {generator_id!r}: params must be a mapping, "
            f"got {type(params).__name__}")
    require("seed" not in params,
            f"generator {generator_id!r}: pass seeds through the spec's "
            "seed field, not inside params")
    unknown = set(params) - set(schema)
    require(not unknown,
            f"generator {generator_id!r} does not accept params "
            f"{sorted(unknown)}; schema: {sorted(schema)}")
    canonical: Dict[str, Any] = {}
    for name in sorted(schema):
        entry = schema[name]
        if name in params:
            value = params[name]
        elif "default" in entry:
            value = entry["default"]
        else:
            require(not entry.get("required", "default" not in entry),
                    f"generator {generator_id!r} needs param {name!r}")
            continue
        kind = entry.get("type", "int")
        allowed = _PARAM_TYPES.get(kind)
        require(allowed is not None,
                f"generator {generator_id!r}: unknown schema type {kind!r} "
                f"for param {name!r}")
        ok = isinstance(value, allowed)
        if kind in ("int", "float") and isinstance(value, bool):
            ok = False
        require(ok, f"generator {generator_id!r}: param {name!r} must be "
                    f"{kind}, got {value!r}")
        if kind == "seq":
            value = list(value)
        choices = entry.get("choices")
        if choices is not None:
            require(value in tuple(choices),
                    f"generator {generator_id!r}: param {name!r} must be one "
                    f"of {sorted(choices)}, got {value!r}")
        canonical[name] = value
    return canonical


_REGISTRY: Dict[str, GeneratorSpec] = {}


def register_generator(generator_id: str, *, summary: str,
                       families: Sequence[str],
                       params_schema: Mapping[str, Mapping[str, Any]],
                       seeded: bool = False,
                       adversarial: bool = False) -> Callable:
    """Decorator registering a DAG-building callable under ``generator_id``.

    Usage::

        @register_generator("fork-join", summary="...",
                            families=("binary", "kway"),
                            params_schema={"width": {"type": "int",
                                                     "required": True}})
        def _build(width, family="binary"): ...
    """
    require(bool(generator_id), "generator_id must be non-empty")
    require("seed" not in params_schema,
            f"generator {generator_id!r}: declare seeded=True instead of a "
            "'seed' schema entry")

    def decorator(func: Callable) -> Callable:
        require(generator_id not in _REGISTRY,
                f"generator id {generator_id!r} already registered")
        _REGISTRY[generator_id] = GeneratorSpec(
            generator_id=generator_id, summary=summary,
            families=frozenset(families),
            params_schema={name: dict(entry)
                           for name, entry in params_schema.items()},
            seeded=seeded, adversarial=adversarial, build=func,
        )
        return func

    return decorator


def unregister_generator(generator_id: str) -> Optional[GeneratorSpec]:
    """Remove (and return) a registered generator; ``None`` if absent."""
    return _REGISTRY.pop(generator_id, None)


def get_generator(generator_id: str) -> GeneratorSpec:
    """Look up a registered generator by id (raises on unknown ids)."""
    require(generator_id in _REGISTRY,
            f"unknown generator {generator_id!r}; registered: "
            f"{sorted(_REGISTRY)}")
    return _REGISTRY[generator_id]


def generator_ids() -> List[str]:
    """All registered generator ids, sorted."""
    return sorted(_REGISTRY)


def generator_specs() -> List[GeneratorSpec]:
    """All registered generator specs, sorted by id."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
