"""Declarative scenario specs and lazy grids.

A :class:`ScenarioSpec` is the JSON-serializable record
``(generator, params, seed, objective, budget_rule)`` -- everything needed
to rebuild one experiment scenario from identifiers alone.  Registered
generators (:mod:`repro.scenarios.registry`) are deterministic in their
parameters and seed, so a spec *is* its problem instance: two equal specs
materialize into content-identical DAGs in any process, which is what lets
the serving layers deduplicate and consult caches **before** any DAG
exists (see :func:`repro.engine.fingerprint.spec_fingerprint`).

A :class:`ScenarioGrid` is the cross-product form: generator entries whose
parameters may carry :class:`Axis` value lists, a seed axis and a budget-
rule axis.  :meth:`ScenarioGrid.expand` is a **lazy iterator** of specs in
a deterministic order with deterministic per-cell seeds -- a 10k-cell grid
is 10k tiny records, never 10k DAGs; materialization happens inside
whichever worker ends up solving a cell.

Budget rules make the problem parameter declarative too:

* ``("const", v)`` -- parameter is ``v``;
* ``("makespan-factor", f)`` -- ``f`` times the zero-resource makespan of
  the built DAG (computed at materialization);
* ``("per-job", v)`` -- ``v`` times the number of non-constant jobs.

Module-level counters (:func:`materialization_info`) count actual DAG
builds, the machine-independent metric the scenario-grid benchmark gates
on ("a warm spec-native sweep builds zero DAGs for store-hit cells").
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.core.dag import TradeoffDAG
from repro.core.problem import MinMakespanProblem, MinResourceProblem
from repro.scenarios.registry import get_generator
from repro.utils.validation import require

__all__ = [
    "Axis",
    "ScenarioSpec",
    "ScenarioGrid",
    "GridDiff",
    "grid_diff",
    "BUDGET_RULE_NAMES",
    "OBJECTIVES",
    "normalize_budget_rule",
    "derive_cell_seed",
    "materialization_info",
    "reset_materialization_counters",
]

#: Objective identifiers (mirroring the solver registry's constants; kept
#: as literals so the scenario layer stays below the engine).
OBJECTIVES = ("min_makespan", "min_resource")

#: Declarative budget-rule names understood by :func:`normalize_budget_rule`.
BUDGET_RULE_NAMES = ("const", "makespan-factor", "per-job")

#: DAG-build accounting; see :func:`materialization_info`.
_COUNTERS = {"dag_builds": 0, "materializations": 0}


def materialization_info() -> Dict[str, int]:
    """Copy of the module's DAG-build counters.

    ``dag_builds`` counts :meth:`ScenarioSpec.build_dag` calls (every one
    constructs a DAG -- specs deliberately do not memoize, a grid's cells
    must not accumulate in memory); ``materializations`` counts full
    :meth:`ScenarioSpec.materialize` calls.
    """
    return dict(_COUNTERS)


def reset_materialization_counters() -> None:
    """Zero the DAG-build counters (benchmarks and tests)."""
    for key in _COUNTERS:
        _COUNTERS[key] = 0


def normalize_budget_rule(rule: Sequence[Any]) -> Tuple[str, float]:
    """Validate a budget rule; returns the canonical ``(name, value)``."""
    require(isinstance(rule, (tuple, list)) and len(rule) == 2,
            f"budget_rule must be a (name, value) pair, got {rule!r}")
    name, value = rule
    require(name in BUDGET_RULE_NAMES,
            f"unknown budget rule {name!r}; known: {list(BUDGET_RULE_NAMES)}")
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            f"budget rule {name!r} needs a numeric value, got {value!r}")
    require(value >= 0, f"budget rule {name!r} needs a non-negative value")
    return (str(name), float(value))


def _canonical_json(payload: Any) -> str:
    """The stable JSON form hashed by cell digests (sorted keys, no NaN)."""
    return json.dumps(payload, sort_keys=True, allow_nan=False,
                      separators=(",", ":"))


def derive_cell_seed(base_seed: int, token: str) -> int:
    """A deterministic, process-stable seed for one grid cell.

    Hash-derived (sha256, never Python's randomized ``hash()``), so the
    same ``(base_seed, cell)`` pair yields the same seed in every process
    and on every platform -- the property the cross-process expansion
    tests pin down.
    """
    digest = hashlib.sha256(f"{base_seed}|{token}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario cell (see module docstring).

    ``params`` are canonicalised against the generator's schema on
    construction (defaults filled, sequences as lists, key-sorted), so
    equality and :meth:`cell_digest` see one canonical form regardless of
    how the spec was written.
    """

    generator: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    objective: str = "min_makespan"
    budget_rule: Tuple[str, float] = ("const", 0.0)

    def __post_init__(self) -> None:
        spec = get_generator(self.generator)
        object.__setattr__(self, "params", spec.validate_params(self.params))
        require(isinstance(self.seed, int) and not isinstance(self.seed, bool)
                and self.seed >= 0, f"seed must be a non-negative int, "
                                    f"got {self.seed!r}")
        require(self.objective in OBJECTIVES,
                f"unknown objective {self.objective!r}; known: "
                f"{list(OBJECTIVES)}")
        object.__setattr__(self, "budget_rule",
                           normalize_budget_rule(self.budget_rule))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The spec as a plain-JSON dict (the wire and manifest form)."""
        return {
            "generator": self.generator,
            "params": dict(self.params),
            "seed": self.seed,
            "objective": self.objective,
            "budget_rule": list(self.budget_rule),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_payload` (raises ``ValidationError``)."""
        require(isinstance(payload, Mapping),
                "scenario spec payload must be an object")
        unknown = set(payload) - {"generator", "params", "seed", "objective",
                                  "budget_rule"}
        require(not unknown,
                f"scenario spec payload has unknown fields {sorted(unknown)}")
        require(isinstance(payload.get("generator"), str),
                "scenario spec payload needs a string 'generator'")
        return cls(
            generator=payload["generator"],
            params=payload.get("params") or {},
            seed=payload.get("seed", 0),
            objective=payload.get("objective", "min_makespan"),
            budget_rule=tuple(payload.get("budget_rule", ("const", 0.0))),
        )

    def canonical_json(self) -> str:
        """The canonical JSON string :meth:`cell_digest` hashes."""
        return _canonical_json(self.to_payload())

    def cell_digest(self) -> str:
        """Content hash of the spec itself (no DAG involved).

        Two specs describing the same cell share this digest in every
        process; it keys the pre-materialization dedup and the
        spec-to-request-key aliases (see
        :func:`repro.engine.fingerprint.spec_alias_key`).
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # ------------------------------------------------------------------
    # materialization (the only place a DAG is built)
    # ------------------------------------------------------------------
    def build_dag(self) -> TradeoffDAG:
        """Build this cell's DAG (counted; deliberately not memoized)."""
        _COUNTERS["dag_builds"] += 1
        return get_generator(self.generator).build_dag(self.params, self.seed)

    def parameter_for(self, dag: TradeoffDAG) -> float:
        """Apply the budget rule to a built DAG (budget / target makespan)."""
        name, value = self.budget_rule
        if name == "const":
            return value
        if name == "makespan-factor":
            return value * dag.makespan_value({})
        improvable = sum(1 for job in dag.jobs
                         if dag.duration_function(job).num_tuples() > 1)
        return value * max(1, improvable)

    def materialize(self) -> Union[MinMakespanProblem, MinResourceProblem]:
        """Build the cell's ready-to-solve problem (DAG + parameter)."""
        _COUNTERS["materializations"] += 1
        dag = self.build_dag()
        parameter = self.parameter_for(dag)
        if self.objective == "min_makespan":
            return MinMakespanProblem(dag, parameter)
        return MinResourceProblem(dag, parameter)


class Axis:
    """Marks a grid parameter value as an expansion axis.

    ``params={"width": Axis([4, 8])}`` expands into one cell per value;
    a plain list stays a single (sequence-valued) parameter -- the marker
    keeps sequence parameters like ``chain`` lengths unambiguous.  Wire
    form: ``{"__axis__": [...]}``.
    """

    __slots__ = ("values",)

    def __init__(self, values: Sequence[Any]):
        values = list(values)
        require(len(values) >= 1, "an Axis needs at least one value")
        self.values = values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Axis({self.values!r})"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Axis) and self.values == other.values


def _axis_to_payload(value: Any) -> Any:
    if isinstance(value, Axis):
        return {"__axis__": list(value.values)}
    return value


def _axis_from_payload(value: Any) -> Any:
    if (isinstance(value, Mapping) and set(value) == {"__axis__"}):
        return Axis(list(value["__axis__"]))
    return value


@dataclass(frozen=True)
class ScenarioGrid:
    """A cross-product of scenario cells, expanded lazily.

    Attributes
    ----------
    generators:
        Generator entries: each ``{"generator": id, "params": {...}}``
        where parameter values may be :class:`Axis` lists (a bare string
        entry means the generator with schema defaults).
    seeds:
        Either an explicit seed axis (a sequence of ints -- every cell is
        produced once per seed) or a single int *base seed*: each cell
        then gets its own :func:`derive_cell_seed` value, deterministic
        across processes.
    budget_rules:
        Budget-rule axis (see :func:`normalize_budget_rule`).
    objective:
        ``"min_makespan"`` or ``"min_resource"`` for every cell.
    """

    generators: Tuple[Any, ...]
    seeds: Union[int, Tuple[int, ...]] = (0,)
    budget_rules: Tuple[Tuple[str, float], ...] = (("const", 0.0),)
    objective: str = "min_makespan"

    def __post_init__(self) -> None:
        entries = []
        require(len(tuple(self.generators)) >= 1,
                "a ScenarioGrid needs at least one generator entry")
        for entry in self.generators:
            if isinstance(entry, str):
                entry = {"generator": entry}
            require(isinstance(entry, Mapping) and "generator" in entry,
                    f"generator entries must be ids or mappings with a "
                    f"'generator' key, got {entry!r}")
            unknown = set(entry) - {"generator", "params"}
            require(not unknown, f"generator entry has unknown fields "
                                 f"{sorted(unknown)}")
            get_generator(entry["generator"])  # fail fast on unknown ids
            entries.append({"generator": entry["generator"],
                            "params": dict(entry.get("params") or {})})
        object.__setattr__(self, "generators", tuple(entries))
        if not isinstance(self.seeds, int):
            seeds = tuple(self.seeds)
            require(len(seeds) >= 1, "the seed axis needs at least one seed")
            object.__setattr__(self, "seeds", seeds)
        require(self.objective in OBJECTIVES,
                f"unknown objective {self.objective!r}")
        rules = tuple(normalize_budget_rule(rule)
                      for rule in self.budget_rules)
        require(len(rules) >= 1, "budget_rules needs at least one rule")
        object.__setattr__(self, "budget_rules", rules)

    # ------------------------------------------------------------------
    def _entry_cells(self, entry: Mapping[str, Any]) -> Iterator[Dict[str, Any]]:
        """Cross product over the Axis-valued params of one entry."""
        params = entry["params"]
        axis_names = sorted(name for name, value in params.items()
                            if isinstance(value, Axis))
        fixed = {name: value for name, value in params.items()
                 if not isinstance(value, Axis)}
        if not axis_names:
            yield dict(fixed)
            return
        for combo in itertools.product(
                *(params[name].values for name in axis_names)):
            cell = dict(fixed)
            cell.update(zip(axis_names, combo))
            yield cell

    def expand(self) -> Iterator[ScenarioSpec]:
        """Lazily yield every cell's :class:`ScenarioSpec`.

        Order is deterministic: generator entries in declaration order,
        their Axis params in sorted-name order (values in declaration
        order), then the seed axis, then the budget-rule axis.  With an
        int base seed, per-cell seeds come from :func:`derive_cell_seed`
        over the cell's *canonical* (schema-defaulted, key-sorted)
        content -- identical across processes, and independent of whether
        default parameter values were spelled out.

        Unseeded generators get seed 0 for every cell, deliberately
        collapsing the seed axis into content-identical specs (distinct
        seeds could not vary the instance and would only split the cache
        key space); the duplicates deduplicate downstream, and a sweep's
        ``unique`` stat reports the true cell count.
        """
        derived = isinstance(self.seeds, int)
        seed_axis: Sequence[int] = ((0,) if derived else self.seeds)
        for entry in self.generators:
            generator = get_generator(entry["generator"])
            for params in self._entry_cells(entry):
                canonical = generator.validate_params(params)
                for seed in seed_axis:
                    for rule in self.budget_rules:
                        if derived:
                            token = _canonical_json(
                                {"generator": entry["generator"],
                                 "params": canonical,
                                 "budget_rule": list(rule),
                                 "objective": self.objective})
                            seed = derive_cell_seed(self.seeds, token)
                        if not generator.seeded:
                            seed = 0
                        yield ScenarioSpec(
                            generator=entry["generator"], params=canonical,
                            seed=seed, objective=self.objective,
                            budget_rule=rule)

    def size(self) -> int:
        """Number of cells :meth:`expand` will yield (no DAGs built)."""
        total = 0
        per_seed = 1 if isinstance(self.seeds, int) else len(self.seeds)
        for entry in self.generators:
            cells = 1
            for value in entry["params"].values():
                if isinstance(value, Axis):
                    cells *= len(value.values)
            total += cells * per_seed * len(self.budget_rules)
        return total

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The grid as a plain-JSON dict (the ``sweep_spec`` wire form)."""
        return {
            "generators": [
                {"generator": entry["generator"],
                 "params": {name: _axis_to_payload(value)
                            for name, value in entry["params"].items()}}
                for entry in self.generators
            ],
            "seeds": (self.seeds if isinstance(self.seeds, int)
                      else list(self.seeds)),
            "budget_rules": [list(rule) for rule in self.budget_rules],
            "objective": self.objective,
        }

    def cells_by_digest(self) -> Dict[str, ScenarioSpec]:
        """``{cell_digest: spec}`` over the expansion, first occurrence wins.

        Duplicate digests (an unseeded generator collapsing the seed
        axis) appear once -- this is the grid's *unique cell* view, the
        unit :func:`grid_diff` and the sweep planner reason about.  No
        DAG is built.
        """
        cells: Dict[str, ScenarioSpec] = {}
        for spec in self.expand():
            cells.setdefault(spec.cell_digest(), spec)
        return cells

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioGrid":
        """Inverse of :meth:`to_payload` (raises ``ValidationError``)."""
        require(isinstance(payload, Mapping), "grid payload must be an object")
        unknown = set(payload) - {"generators", "seeds", "budget_rules",
                                  "objective"}
        require(not unknown,
                f"grid payload has unknown fields {sorted(unknown)}")
        generators_payload = payload.get("generators")
        require(isinstance(generators_payload, (list, tuple)),
                "grid payload needs a 'generators' list")
        generators: List[Dict[str, Any]] = []
        for entry in generators_payload:
            if isinstance(entry, str):
                generators.append({"generator": entry, "params": {}})
                continue
            require(isinstance(entry, Mapping),
                    f"generator entries must be objects, got {entry!r}")
            generators.append({
                "generator": entry.get("generator"),
                "params": {name: _axis_from_payload(value)
                           for name, value in
                           (entry.get("params") or {}).items()},
            })
        seeds = payload.get("seeds", (0,))
        return cls(
            generators=tuple(generators),
            seeds=seeds if isinstance(seeds, int) else tuple(seeds),
            budget_rules=tuple(tuple(rule) for rule in
                               payload.get("budget_rules", (("const", 0.0),))),
            objective=payload.get("objective", "min_makespan"),
        )


@dataclass(frozen=True)
class GridDiff:
    """The cell-level difference between two grids (see :func:`grid_diff`).

    ``gained`` and ``shared`` carry the *new* grid's spec for each
    digest, ``lost`` the old grid's -- all in their grid's deterministic
    expansion order, one entry per unique digest.
    """

    gained: Tuple[ScenarioSpec, ...]
    lost: Tuple[ScenarioSpec, ...]
    shared: Tuple[ScenarioSpec, ...]

    @property
    def is_empty(self) -> bool:
        """True when the grids describe identical cell sets."""
        return not self.gained and not self.lost

    def counts(self) -> Dict[str, int]:
        """``{"gained": n, "lost": n, "shared": n}``."""
        return {"gained": len(self.gained), "lost": len(self.lost),
                "shared": len(self.shared)}


def grid_diff(old: Union[ScenarioGrid, Sequence[ScenarioSpec]],
              new: Union[ScenarioGrid, Sequence[ScenarioSpec]]) -> GridDiff:
    """Cells gained / lost / shared between two grids, by cell digest.

    Pure spec-level set arithmetic: grids expand into tiny spec records
    and compare by :meth:`ScenarioSpec.cell_digest`, so diffing two
    10k-cell grids builds **zero DAGs**.  An edited grid resubmitted to
    the sweep layer therefore knows, before any store lookup, which
    cells are genuinely new work (``gained``) and which it can expect
    the cache tiers to answer (``shared``).  Accepts grids or plain
    spec sequences.

    >>> from repro.scenarios import Axis, ScenarioGrid, grid_diff
    >>> def widths(*values):
    ...     return ScenarioGrid(
    ...         generators=({"generator": "fork-join",
    ...                      "params": {"width": Axis(list(values)),
    ...                                 "work": 4}},),
    ...         budget_rules=(("const", 2.0),))
    >>> diff = grid_diff(widths(2, 3), widths(3, 4))
    >>> (len(diff.gained), len(diff.lost), len(diff.shared))
    (1, 1, 1)
    >>> diff.gained[0].params["width"], diff.lost[0].params["width"]
    (4, 2)
    >>> grid_diff(widths(2, 3), widths(2, 3)).is_empty
    True
    """
    old_cells = _unique_cells(old)
    new_cells = _unique_cells(new)
    return GridDiff(
        gained=tuple(spec for digest, spec in new_cells.items()
                     if digest not in old_cells),
        lost=tuple(spec for digest, spec in old_cells.items()
                   if digest not in new_cells),
        shared=tuple(spec for digest, spec in new_cells.items()
                     if digest in old_cells),
    )


def _unique_cells(grid: Union[ScenarioGrid, Sequence[ScenarioSpec]]
                  ) -> Dict[str, ScenarioSpec]:
    if isinstance(grid, ScenarioGrid):
        return grid.cells_by_digest()
    cells: Dict[str, ScenarioSpec] = {}
    for spec in grid:
        require(isinstance(spec, ScenarioSpec),
                f"grid_diff wants grids or ScenarioSpec sequences, "
                f"got {type(spec).__name__}")
        cells.setdefault(spec.cell_digest(), spec)
    return cells
