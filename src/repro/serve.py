"""``python -m repro.serve`` -- a JSON-lines network front for the engine.

A deliberately small, stdlib-only server exposing
:class:`~repro.engine.async_service.AsyncSweepService` over TCP or a unix
socket.  The protocol is newline-delimited JSON, one object per line:

Requests (client -> server)::

    {"op": "sweep", "id": "r1", "scenarios": [<problem payload>, ...],
     "method": "auto", "options": {"alpha": 0.5}}
    {"op": "sweep_spec", "id": "r4", "grid": {<grid payload>},
     "method": "auto"}                          # or "specs": [<spec>, ...]
    {"op": "stats", "id": "r2"}
    {"op": "metrics", "id": "r5"}
    {"op": "ping", "id": "r3"}

Responses (server -> client) -- a ``sweep`` streams one line per scenario
*as each result resolves* (store hits first, computed ones as their shards
finish), then a terminating ``done`` line::

    {"id": "r1", "index": 0, "key": "...", "source": "computed",
     "error": null, "report": {...}}                       # per scenario
    {"id": "r1", "done": true, "count": 3}                 # terminator
    {"id": "r2", "stats": {...}}                           # stats reply
    {"id": "r5", "metrics": {...}}                         # counter snapshot
    {"id": "r3", "pong": true}                             # ping reply
    {"id": "r1", "error": "..."}                           # request error
    {"id": "r1", "rejected": true, "error": "..."}         # admission reject

Protocol faults never tear a connection down: a malformed JSON line, a
non-object line, an unknown ``op`` or a line longer than the server's
``max_line_bytes`` each get a structured ``{"error": ...}`` response (with
``"id": null`` when no id could be parsed) and the connection keeps
serving -- the fault is counted in the server's ``protocol_errors``.  The
``metrics`` op returns the full counter snapshot
(:meth:`~repro.engine.async_service.AsyncSweepService.snapshot` plus the
server's own wire-level counters under ``"server"``); the load harness in
:mod:`repro.loadgen` polls it before and after a run and reconciles the
deltas against its client-side accounting.  With ``admission_limit`` set,
a sweep arriving while that many unique requests are already queued or in
flight is answered immediately with a ``rejected`` line instead of
blocking at the backpressure point -- the overload story for open-loop
traffic (see ``docs/serving.md``).

A *problem payload* mirrors the engine's content model (see
:func:`problem_to_payload`)::

    {"objective": "min_makespan", "parameter": 2.0,
     "jobs": [["s", [[0, 4], [2, 1]]], ["t", [[0, 0]]]],
     "edges": [["s", "t"]]}

``jobs`` pairs a (string) job name with its canonical resource-time
breakpoints; every duration family serialises through its ``tuples()``
view, and decoding rebuilds an equivalent
:class:`~repro.core.duration.GeneralStepDuration` -- equal breakpoints hash
to the same :func:`~repro.engine.fingerprint.dag_fingerprint`, so wire
clients share cache entries with in-process callers.  Reports on the wire
use the same stable encoding as the persistent store
(:func:`~repro.engine.store.report_to_payload`).

``sweep_spec`` is the **spec-native** request: instead of materialized
problem payloads the client ships a declarative
:class:`~repro.scenarios.spec.ScenarioGrid` (or a list of
:class:`~repro.scenarios.spec.ScenarioSpec` payloads) -- a few hundred
bytes however many cells it expands to.  The server expands the grid,
deduplicates and answers store-hit cells *before any DAG exists*, and
materializes the rest lazily inside worker shards
(:meth:`~repro.engine.async_service.AsyncSweepService.submit_specs`).
Each per-cell response line carries the cell's true request fingerprint --
the same key a ``sweep`` over the materialized problems would report, so
the two paths are interchangeable and share every cache tier.

Run it::

    python -m repro.serve --port 7341 --store var/solutions
    python -m repro.serve --unix /tmp/repro.sock --executor thread

and talk to it from anything that can write a line of JSON to a socket
(``examples/async_service_tour.py`` shows the asyncio client helper
:func:`request_sweep`; ``benchmarks/bench_async_service.py`` measures the
stack under concurrent clients).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import socket
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.problem import MinMakespanProblem, MinResourceProblem
from repro.engine.async_service import AsyncSweepService
from repro.engine.core import Problem, SolveLimits
from repro.engine.portfolio import Portfolio
from repro.engine.store import report_to_payload
from repro.scenarios import ScenarioGrid, ScenarioSpec
from repro.utils.validation import ValidationError, require

__all__ = [
    "PROTOCOL_VERSION",
    "problem_to_payload",
    "problem_from_payload",
    "ServerStats",
    "SweepServer",
    "request_sweep",
    "request_sweep_spec",
    "request_metrics",
    "request_warm_cache",
    "main",
]

#: Version of the wire protocol; echoed in every ``done`` line.
PROTOCOL_VERSION = 1

#: Read granularity of the bounded line reader (bytes per ``read`` call).
_READ_CHUNK = 65536

MIN_MAKESPAN_WIRE = "min_makespan"
MIN_RESOURCE_WIRE = "min_resource"


def _wire_number(value: Any) -> Union[int, float]:
    """Validate a wire number, preserving its exact type (int stays int)."""
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            f"expected a number, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# problem wire codec
# ---------------------------------------------------------------------------

def problem_to_payload(problem: Problem) -> Dict[str, Any]:
    """Encode a problem as the wire's JSON-safe dict.

    Wire problems are restricted to string job names (the network client
    chooses its own names; anything hashable-but-exotic stays in-process).
    Duration functions serialise as their canonical breakpoints.  Numeric
    types are preserved exactly (JSON keeps ``2`` and ``2.0`` distinct),
    because the engine's content fingerprints hash breakpoint ``repr``s --
    coercing to float would silently split the cache key space between
    wire clients and in-process callers.
    """
    problem = _normalize(problem)
    dag = problem.dag
    jobs = []
    for job in dag.jobs:
        require(isinstance(job, str),
                f"wire problems need string job names, got {job!r}")
        jobs.append([job, [[_wire_number(r), _wire_number(t)]
                           for r, t in dag.duration_function(job).tuples()]])
    if isinstance(problem, MinMakespanProblem):
        objective, parameter = MIN_MAKESPAN_WIRE, problem.budget
    else:
        objective, parameter = MIN_RESOURCE_WIRE, problem.target_makespan
    return {
        "objective": objective,
        "parameter": _wire_number(parameter),
        "jobs": jobs,
        "edges": [[u, v] for u, v in dag.edges],
    }


def problem_from_payload(payload: Dict[str, Any]) -> Problem:
    """Inverse of :func:`problem_to_payload` (raises ``ValidationError``)."""
    require(isinstance(payload, dict), "problem payload must be an object")
    objective = payload.get("objective")
    require(objective in (MIN_MAKESPAN_WIRE, MIN_RESOURCE_WIRE),
            f"unknown objective {objective!r}")
    parameter = payload.get("parameter")
    require(isinstance(parameter, (int, float)),
            "problem payload needs a numeric 'parameter'")
    jobs = payload.get("jobs")
    require(isinstance(jobs, list) and jobs,
            "problem payload needs a non-empty 'jobs' list")
    dag = TradeoffDAG()
    for item in jobs:
        require(isinstance(item, (list, tuple)) and len(item) == 2,
                "each job must be a [name, tuples] pair")
        name, tuples = item
        require(isinstance(name, str), f"job names must be strings, got {name!r}")
        require(isinstance(tuples, list) and tuples,
                f"job {name!r} needs a non-empty breakpoint list")
        points = [(_wire_number(r), _wire_number(t)) for r, t in tuples]
        if len(points) == 1 and points[0][0] == 0:
            dag.add_job(name, ConstantDuration(points[0][1]))
        else:
            dag.add_job(name, GeneralStepDuration(points))
    for edge in payload.get("edges", []):
        require(isinstance(edge, (list, tuple)) and len(edge) == 2,
                "each edge must be a [u, v] pair")
        dag.add_edge(edge[0], edge[1])
    dag.validate()
    if objective == MIN_MAKESPAN_WIRE:
        return MinMakespanProblem(dag, _wire_number(parameter))
    return MinResourceProblem(dag, _wire_number(parameter))


def _normalize(problem: Problem) -> Problem:
    require(isinstance(problem, (MinMakespanProblem, MinResourceProblem)),
            f"unsupported problem type {type(problem).__name__}")
    return problem


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

@dataclass
class ServerStats:
    """Wire-level counters of one :class:`SweepServer` lifetime.

    These sit *in front* of the service's
    :class:`~repro.engine.async_service.AsyncSweepStats`: everything the
    service never sees (protocol faults, admission rejections, dropped
    slow readers) is only visible here.  Exported by the ``stats`` and
    ``metrics`` ops under ``"server"``.
    """

    #: Client connections accepted.
    connections: int = 0
    #: Request lines parsed well enough to dispatch an op.
    requests: int = 0
    #: Wire-protocol faults answered with a structured error line
    #: (malformed JSON, non-object line, unknown op, oversized line).
    protocol_errors: int = 0
    #: The subset of ``protocol_errors`` caused by lines longer than
    #: ``max_line_bytes`` (their bytes are discarded, never parsed).
    oversized_lines: int = 0
    #: Sweeps refused at the admission limit (``rejected`` lines sent).
    rejections: int = 0
    #: Connections aborted because the client stalled reading past
    #: ``drain_timeout`` while the server had responses to flush.
    slow_reader_drops: int = 0


class SweepServer:
    """Newline-delimited-JSON front end over an :class:`AsyncSweepService`.

    One server wraps one service; connections are handled concurrently and
    every request line inside a connection is served concurrently too
    (responses are tagged with the request's ``id`` and may interleave --
    per-scenario results stream back the moment their futures resolve).

    Parameters
    ----------
    max_line_bytes:
        Longest request line accepted; longer lines are discarded without
        parsing and answered with a structured error (the connection
        survives).  Bounds per-connection buffer memory against oversized
        or hostile payloads.
    drain_timeout:
        With a value, a response write whose ``drain()`` stalls longer
        than this many seconds aborts the connection (counted in
        ``stats.slow_reader_drops``) -- a reader that stopped reading
        must not pin server memory.  ``None`` (default) waits forever.
    write_buffer_limit:
        Optional transport high-water mark in bytes (per connection);
        smaller values make ``drain()`` engage earlier.  Mostly for the
        slow-reader chaos tests and the load harness.
    socket_sndbuf:
        Optional ``SO_SNDBUF`` for accepted connections; shrinking it
        makes slow-reader behaviour reproducible (the kernel otherwise
        absorbs hundreds of KB before ``drain()`` ever blocks).
    admission_limit:
        With a value, a sweep arriving while ``queue_depth() +
        inflight_count()`` is at or above it is *rejected* immediately
        (``{"rejected": true}`` line, ``stats.rejections``) instead of
        blocking at the bounded queue.  ``None`` (default) keeps the pure
        backpressure behaviour.
    runner_id:
        Optional stable name of this runner inside a cluster (see
        :mod:`repro.cluster`); echoed in every ``ping`` reply and stamped
        on the service's ``metrics`` snapshot so an aggregating router
        can attribute counters per runner.
    """

    def __init__(self, service: AsyncSweepService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_socket: Optional[str] = None,
                 max_line_bytes: int = 1 << 20,
                 drain_timeout: Optional[float] = None,
                 write_buffer_limit: Optional[int] = None,
                 socket_sndbuf: Optional[int] = None,
                 admission_limit: Optional[int] = None,
                 runner_id: Optional[str] = None):
        require(max_line_bytes > 0, "max_line_bytes must be positive")
        require(drain_timeout is None or drain_timeout > 0,
                "drain_timeout must be positive (or None)")
        require(admission_limit is None or admission_limit >= 0,
                "admission_limit must be >= 0 (or None)")
        self.service = service
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.max_line_bytes = max_line_bytes
        self.drain_timeout = drain_timeout
        self.write_buffer_limit = write_buffer_limit
        self.socket_sndbuf = socket_sndbuf
        self.admission_limit = admission_limit
        self.runner_id = runner_id
        if runner_id is not None and service.runner_id is None:
            service.runner_id = runner_id
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._request_tasks: set = set()
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "SweepServer":
        """Bind the listening socket and warm the service."""
        await self.service.start()
        if self.unix_socket:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.unix_socket)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port)
            # With port=0 the OS picked one; expose it for clients.
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        """Human-readable bound address (``host:port`` or the socket path)."""
        if self.unix_socket:
            return self.unix_socket
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        require(self._server is not None, "call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    def abort(self) -> None:
        """Hard-stop, as if the runner process died: no drain, no goodbyes.

        Closes the listener and severs every live connection at the
        transport (clients see a reset, not EOF).  Shards already running
        in the pool still finish and persist -- exactly the store-backed
        recovery a cluster router relies on when it re-routes the cells
        this runner never answered.  The failover tests in
        ``tests/test_cluster.py`` are the contract.
        """
        if self._server is not None:
            self._server.close()
        for writer in list(self._connections):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    async def aclose(self) -> None:
        """Stop accepting connections, finish pending requests, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._request_tasks:
            await asyncio.gather(*list(self._request_tasks),
                                 return_exceptions=True)
        await self.service.aclose()

    async def __aenter__(self) -> "SweepServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # -- request handling ----------------------------------------------
    async def _next_line(self, reader: asyncio.StreamReader,
                         buffer: bytearray) -> Tuple[Optional[bytes], bool]:
        """The next newline-terminated line, bounded by ``max_line_bytes``.

        Returns ``(line, oversized)``; ``(None, _)`` on EOF (or a dead
        transport).  An oversized line is *discarded as it streams in* --
        its bytes are never accumulated past the bound nor parsed -- and
        reported as ``(b"", True)`` once its terminating newline arrives,
        so the caller can answer with a structured error and keep the
        connection alive.
        """
        oversized = False
        while True:
            newline = buffer.find(b"\n")
            if newline >= 0:
                line = bytes(buffer[:newline])
                del buffer[:newline + 1]
                if oversized or len(line) > self.max_line_bytes:
                    return b"", True
                return line, False
            if len(buffer) > self.max_line_bytes:
                oversized = True
                del buffer[:]
            try:
                chunk = await reader.read(_READ_CHUNK)
            except (ConnectionError, OSError):
                return None, oversized
            if not chunk:
                return None, oversized
            buffer.extend(chunk)

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self._connections.add(writer)
        if self.socket_sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                                self.socket_sndbuf)
        if self.write_buffer_limit is not None:
            writer.transport.set_write_buffer_limits(
                high=self.write_buffer_limit)
        write_lock = asyncio.Lock()
        alive = True

        async def send(obj: Dict[str, Any]) -> None:
            nonlocal alive
            if not alive:
                return  # dropped/dead connection; results stay persisted
            async with write_lock:
                if not alive:
                    return
                try:
                    writer.write(json.dumps(obj, sort_keys=True).encode() + b"\n")
                    if self.drain_timeout is not None:
                        await asyncio.wait_for(writer.drain(),
                                               self.drain_timeout)
                    else:
                        await writer.drain()
                except asyncio.TimeoutError:
                    # The client stalled reading while we had output to
                    # flush: drop it rather than pin buffers forever.
                    alive = False
                    self.stats.slow_reader_drops += 1
                    writer.transport.abort()
                except (ConnectionError, RuntimeError):
                    alive = False  # client went away; results stay persisted

        buffer = bytearray()
        try:
            while True:
                raw, oversized = await self._next_line(reader, buffer)
                if raw is None:
                    break
                if oversized:
                    self.stats.protocol_errors += 1
                    self.stats.oversized_lines += 1
                    await send({"id": None,
                                "error": "oversized request line "
                                         f"(> {self.max_line_bytes} bytes)"})
                    continue
                line = raw.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    require(isinstance(request, dict),
                            "request lines must be JSON objects")
                except (json.JSONDecodeError, ValidationError) as exc:
                    self.stats.protocol_errors += 1
                    await send({"id": None, "error": f"bad request line: {exc}"})
                    continue
                task = asyncio.create_task(self._serve_request(request, send))
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _overloaded(self) -> bool:
        """Is the service at (or past) the admission limit right now?"""
        return (self.admission_limit is not None
                and (self.service.queue_depth()
                     + self.service.inflight_count()) >= self.admission_limit)

    async def _reject(self, request_id: Any, send) -> None:
        self.stats.rejections += 1
        await send({"id": request_id, "rejected": True,
                    "error": "overloaded: admission limit reached "
                             f"({self.admission_limit} requests pending)"})

    async def _serve_request(self, request: Dict[str, Any], send) -> None:
        request_id = request.get("id")
        op = request.get("op", "sweep")
        self.stats.requests += 1
        try:
            if op == "ping":
                reply = {"id": request_id, "pong": True}
                if self.runner_id is not None:
                    reply["runner"] = self.runner_id
                await send(reply)
            elif op == "stats":
                stats = vars(self.service.stats).copy()
                stats["queue_depth"] = self.service.queue_depth()
                stats["inflight"] = self.service.inflight_count()
                stats["server"] = vars(self.stats).copy()
                await send({"id": request_id, "stats": stats})
            elif op == "metrics":
                metrics = self.service.snapshot()
                metrics["server"] = vars(self.stats).copy()
                await send({"id": request_id, "metrics": metrics})
            elif op == "sweep":
                await self._serve_sweep(request_id, request, send)
            elif op == "sweep_spec":
                await self._serve_sweep_spec(request_id, request, send)
            elif op == "warm_cache":
                await self._serve_warm_cache(request_id, request, send)
            else:
                self.stats.protocol_errors += 1
                await send({"id": request_id, "error": f"unknown op {op!r}"})
        except (ValidationError, ValueError, TypeError, KeyError,
                RuntimeError) as exc:
            await send({"id": request_id,
                        "error": f"{type(exc).__name__}: {exc}"})

    async def _relay_ticket(self, request_id: Any, ticket, send,
                            extra_fields=None) -> None:
        """Stream one line per slot future as it resolves, then ``done``.

        The single owner of the per-slot response shape for every sweep
        flavour; ``extra_fields(index) -> dict`` contributes
        flavour-specific fields (the spec path's ``"cell"`` digest).
        """
        async def relay(index: int, future: "asyncio.Future") -> None:
            result = await future
            report = None
            if result.report is not None:
                report = report_to_payload(result.report, result.key)
            line = {"id": request_id, "index": index, "key": result.key,
                    "source": result.source, "error": result.error,
                    "report": report}
            if extra_fields is not None:
                line.update(extra_fields(index))
            await send(line)

        await asyncio.gather(*[relay(i, f)
                               for i, f in enumerate(ticket.futures)])
        await send({"id": request_id, "done": True,
                    "count": len(ticket.futures),
                    "protocol": PROTOCOL_VERSION})

    async def _serve_sweep(self, request_id: Any, request: Dict[str, Any],
                           send) -> None:
        if self._overloaded():
            await self._reject(request_id, send)
            return
        scenarios = request.get("scenarios")
        require(isinstance(scenarios, list) and scenarios,
                "sweep requests need a non-empty 'scenarios' list")
        options = request.get("options") or {}
        require(isinstance(options, dict), "'options' must be an object")
        problems = [problem_from_payload(p) for p in scenarios]
        ticket = await self.service.submit(problems,
                                           request.get("method", "auto"),
                                           **options)
        await self._relay_ticket(request_id, ticket, send)

    async def _serve_sweep_spec(self, request_id: Any, request: Dict[str, Any],
                                send) -> None:
        """Serve one spec-native sweep: expand, submit, stream per cell."""
        if self._overloaded():
            await self._reject(request_id, send)
            return
        grid_payload = request.get("grid")
        spec_payloads = request.get("specs")
        require((grid_payload is None) != (spec_payloads is None),
                "sweep_spec requests need exactly one of 'grid' or 'specs'")
        options = request.get("options") or {}
        require(isinstance(options, dict), "'options' must be an object")
        if grid_payload is not None:
            specs = list(ScenarioGrid.from_payload(grid_payload).expand())
        else:
            require(isinstance(spec_payloads, list) and spec_payloads,
                    "'specs' must be a non-empty list of spec payloads")
            specs = [ScenarioSpec.from_payload(p) for p in spec_payloads]
        require(len(specs) > 0, "the grid expands to zero cells")
        ticket = await self.service.submit_specs(
            specs, request.get("method", "auto"), **options)
        await self._relay_ticket(
            request_id, ticket, send,
            extra_fields=lambda index: {"cell": specs[index].cell_digest()})

    async def _serve_warm_cache(self, request_id: Any,
                                request: Dict[str, Any], send) -> None:
        """Serve one ``warm_cache`` op: prewarm this runner's key range.

        The wire entry point of an elastic-resize warm handoff: the router
        sends its ring payload plus this runner's name before routing any
        traffic here, and the runner bulk-loads exactly that ring share
        from the store into its tier-1 LRU
        (:meth:`~repro.engine.async_service.AsyncSweepService.warm_cache`).
        Without a ring the whole store is warmed.  Replies one line:
        ``{"id", "warmed", "aliases"}``.
        """
        ring_payload = request.get("ring")
        owner = request.get("owner")
        ring = None
        if ring_payload is not None:
            # Imported here, not at module level: the cluster package's
            # router already imports this module for the wire helpers.
            from repro.cluster.ring import HashRing

            ring = HashRing.from_payload(ring_payload)
            require(isinstance(owner, str) and bool(owner),
                    "warm_cache with a ring needs the 'owner' runner name")
        limit = request.get("limit")
        require(limit is None or (isinstance(limit, int) and limit >= 0),
                "'limit' must be a non-negative integer")
        outcome = self.service.warm_cache(ring, owner, limit=limit)
        reply = {"id": request_id, "warmed": outcome["warmed"],
                 "aliases": outcome["aliases"]}
        if self.runner_id is not None:
            reply["runner"] = self.runner_id
        await send(reply)


# ---------------------------------------------------------------------------
# client helper
# ---------------------------------------------------------------------------

async def _stream_request(payload: Dict[str, Any], expected: int, *,
                          host: str, port: Optional[int],
                          unix_socket: Optional[str]) -> List[Dict[str, Any]]:
    """Send one request line, collect its streamed per-slot responses.

    Returns the per-slot response dicts in batch order (the streamed order
    may differ; this helper reassembles it).  Raises
    :class:`ValidationError` on a server-reported request error.
    """
    if unix_socket:
        reader, writer = await asyncio.open_unix_connection(unix_socket)
    else:
        require(port is not None, "the client helpers need port= or unix_socket=")
        reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        results: Dict[int, Dict[str, Any]] = {}
        while True:
            line = await reader.readline()
            require(bool(line), "server closed the connection mid-request")
            response = json.loads(line)
            if "index" in response:
                # Per-scenario line; a failed scenario ("source": "failed",
                # "error": ...) is a valid result slot, not a request error.
                results[response["index"]] = response
                continue
            if response.get("error"):
                raise ValidationError(f"server error: {response['error']}")
            if response.get("done"):
                break
        require(len(results) == expected,
                f"server answered {len(results)}/{expected} scenarios")
        return [results[i] for i in range(expected)]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def request_sweep(problems: Sequence[Problem], *,
                        host: str = "127.0.0.1", port: Optional[int] = None,
                        unix_socket: Optional[str] = None,
                        method: str = "auto",
                        options: Optional[Dict[str, Any]] = None,
                        request_id: str = "sweep-1",
                        ) -> List[Dict[str, Any]]:
    """One-shot asyncio client: sweep ``problems`` against a running server.

    Returns the per-scenario response dicts in batch order.  Raises
    :class:`ValidationError` on a server-reported request error.
    """
    payload = {"op": "sweep", "id": request_id,
               "scenarios": [problem_to_payload(p) for p in problems],
               "method": method, "options": options or {}}
    return await _stream_request(payload, len(problems), host=host,
                                 port=port, unix_socket=unix_socket)


async def request_sweep_spec(scenarios: Union[ScenarioGrid,
                                              Sequence[ScenarioSpec]], *,
                             host: str = "127.0.0.1",
                             port: Optional[int] = None,
                             unix_socket: Optional[str] = None,
                             method: str = "auto",
                             options: Optional[Dict[str, Any]] = None,
                             request_id: str = "sweep-spec-1",
                             ) -> List[Dict[str, Any]]:
    """One-shot spec-native client: ship a grid (or specs), not DAGs.

    ``scenarios`` is a :class:`~repro.scenarios.spec.ScenarioGrid` --
    serialized whole, a few hundred bytes however many cells it expands to
    -- or a sequence of :class:`~repro.scenarios.spec.ScenarioSpec`
    records.  Returns the per-cell response dicts in expansion order; each
    carries the cell's request fingerprint under ``"key"`` (identical to
    what :func:`request_sweep` over the materialized problems reports) and
    its spec content digest under ``"cell"``.
    """
    if isinstance(scenarios, ScenarioGrid):
        expected = scenarios.size()
        payload: Dict[str, Any] = {"op": "sweep_spec", "id": request_id,
                                   "grid": scenarios.to_payload()}
    else:
        specs = list(scenarios)
        expected = len(specs)
        payload = {"op": "sweep_spec", "id": request_id,
                   "specs": [spec.to_payload() for spec in specs]}
    payload["method"] = method
    payload["options"] = options or {}
    return await _stream_request(payload, expected, host=host, port=port,
                                 unix_socket=unix_socket)


async def request_metrics(*, host: str = "127.0.0.1",
                          port: Optional[int] = None,
                          unix_socket: Optional[str] = None,
                          request_id: str = "metrics-1") -> Dict[str, Any]:
    """One-shot asyncio client for the ``metrics`` op.

    Returns the server's counter snapshot
    (:meth:`~repro.engine.async_service.AsyncSweepService.snapshot` plus
    the wire-level :class:`ServerStats` under ``"server"``).  Raises
    :class:`ValidationError` on a server-reported error.
    """
    if unix_socket:
        reader, writer = await asyncio.open_unix_connection(unix_socket)
    else:
        require(port is not None, "the client helpers need port= or unix_socket=")
        reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps({"op": "metrics", "id": request_id}).encode()
                     + b"\n")
        await writer.drain()
        line = await reader.readline()
        require(bool(line), "server closed the connection mid-request")
        response = json.loads(line)
        if response.get("error"):
            raise ValidationError(f"server error: {response['error']}")
        require(isinstance(response.get("metrics"), dict),
                "metrics reply must carry a 'metrics' object")
        return response["metrics"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def request_warm_cache(*, host: str = "127.0.0.1",
                             port: Optional[int] = None,
                             unix_socket: Optional[str] = None,
                             ring: Optional[Dict[str, Any]] = None,
                             owner: Optional[str] = None,
                             limit: Optional[int] = None,
                             request_id: str = "warm-1") -> Dict[str, Any]:
    """One-shot asyncio client for the ``warm_cache`` op.

    ``ring`` is a :meth:`HashRing.to_payload
    <repro.cluster.ring.HashRing.to_payload>` dict and ``owner`` the
    target runner's name; both omitted warms the server's whole store.
    Returns the reply dict (``{"warmed": ..., "aliases": ...}``).  Raises
    :class:`ValidationError` on a server-reported error.
    """
    payload: Dict[str, Any] = {"op": "warm_cache", "id": request_id}
    if ring is not None:
        payload["ring"] = ring
        payload["owner"] = owner
    if limit is not None:
        payload["limit"] = limit
    if unix_socket:
        reader, writer = await asyncio.open_unix_connection(unix_socket)
    else:
        require(port is not None, "the client helpers need port= or unix_socket=")
        reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        require(bool(line), "server closed the connection mid-request")
        response = json.loads(line)
        if response.get("error"):
            raise ValidationError(f"server error: {response['error']}")
        require("warmed" in response,
                "warm_cache reply must carry a 'warmed' count")
        return response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="JSON-lines-over-TCP/unix-socket front for the "
                    "asyncio sweep service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7341,
                        help="TCP port (0 picks a free one; default 7341)")
    parser.add_argument("--unix", metavar="PATH", default=None,
                        help="serve on a unix socket instead of TCP")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent SolutionStore directory (tier 2)")
    parser.add_argument("--manifest", metavar="PATH", default=None,
                        help="checkpoint completed request keys here")
    parser.add_argument("--executor", choices=("process", "thread"),
                        default="process")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size (default: CPU count)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="max shards in flight (default: worker count)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="request queue bound (backpressure point)")
    parser.add_argument("--shard-size", type=int, default=1,
                        help="max scenarios per executor task")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="per-solve soft time limit in seconds")
    parser.add_argument("--admission-limit", type=int, default=None,
                        help="reject sweeps (instead of blocking) once this "
                             "many requests are queued or in flight")
    parser.add_argument("--max-line-bytes", type=int, default=1 << 20,
                        help="longest accepted request line (default 1 MiB); "
                             "longer lines get a structured error")
    parser.add_argument("--drain-timeout", type=float, default=None,
                        help="drop a connection whose reader stalls longer "
                             "than this many seconds (default: wait forever)")
    parser.add_argument("--runner-id", default=None,
                        help="stable runner name inside a cluster; echoed "
                             "in ping replies and metrics snapshots")
    return parser


async def _run_server(args: argparse.Namespace) -> None:
    limits = SolveLimits(time_limit=args.time_limit) if args.time_limit else None
    service = AsyncSweepService(
        store=args.store,
        portfolio=Portfolio(executor=args.executor, max_workers=args.workers),
        limits=limits,
        max_concurrency=args.concurrency,
        queue_size=args.queue_size,
        shard_size=args.shard_size,
        manifest=args.manifest,
        runner_id=args.runner_id)
    server = SweepServer(service, host=args.host, port=args.port,
                         unix_socket=args.unix,
                         max_line_bytes=args.max_line_bytes,
                         drain_timeout=args.drain_timeout,
                         admission_limit=args.admission_limit,
                         runner_id=args.runner_id)
    await server.start()
    resume = ""
    if args.manifest:
        # start() above loaded the v2 manifest; say how much of an
        # interrupted sweep this runner will answer from disk.
        resume = f", resume={service.resume_cells} cells"
    print(f"repro.serve: listening on {server.address} "
          f"(executor={args.executor}, store={args.store or 'none'}"
          f"{resume})",
          flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
        pass
    finally:
        await server.aclose()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.serve``."""
    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_run_server(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print("repro.serve: shutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
