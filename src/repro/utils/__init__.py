"""Shared utilities for the resource-time tradeoff library.

This subpackage holds small, dependency-free helpers used across the core
algorithms, the data-race substrate and the hardness constructions:

* :mod:`repro.utils.validation` -- argument checking helpers that raise
  uniform, descriptive errors.
* :mod:`repro.utils.ordering` -- topological ordering and longest-path
  helpers over plain adjacency dictionaries.
"""

from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    require,
)
from repro.utils.ordering import (
    topological_order,
    longest_path_lengths,
    all_ancestors,
    all_descendants,
    is_acyclic,
)

__all__ = [
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "require",
    "topological_order",
    "longest_path_lengths",
    "all_ancestors",
    "all_descendants",
    "is_acyclic",
]
