"""Topological ordering and longest-path helpers.

These helpers operate on plain ``dict`` adjacency structures
(``node -> iterable of successors``) so that they can be reused both by the
core :class:`~repro.core.dag.TradeoffDAG` / :class:`~repro.core.arcdag.ArcDAG`
classes and by the lighter-weight graphs built inside the hardness gadget
constructions, without forcing everything through ``networkx``.

Longest ("critical") paths are the central quantity of the paper: the
makespan of a project DAG is the maximum, over source-to-sink paths, of the
summed durations along the path (Observation 1.1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

Node = Hashable


def _successor_map(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> Dict[Node, List[Node]]:
    succ: Dict[Node, List[Node]] = {n: [] for n in nodes}
    for u, v in edges:
        succ.setdefault(u, []).append(v)
        succ.setdefault(v, [])
    return succ


def topological_order(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> List[Node]:
    """Return a topological order of ``nodes`` under ``edges``.

    Raises
    ------
    ValueError
        If the directed graph contains a cycle.
    """
    nodes = list(nodes)
    succ = _successor_map(nodes, edges)
    indeg: Dict[Node, int] = {n: 0 for n in succ}
    for u, vs in succ.items():
        for v in vs:
            indeg[v] += 1
    queue = deque(sorted((n for n, d in indeg.items() if d == 0), key=repr))
    order: List[Node] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in succ[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != len(succ):
        raise ValueError("graph contains a cycle; topological order undefined")
    return order


def is_acyclic(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> bool:
    """Return ``True`` iff the directed graph has no directed cycle."""
    try:
        topological_order(nodes, edges)
        return True
    except ValueError:
        return False


def longest_path_lengths(
    nodes: Iterable[Node],
    edges: Iterable[Tuple[Node, Node]],
    edge_weight: Callable[[Node, Node], float],
    node_weight: Optional[Callable[[Node], float]] = None,
    sources: Optional[Sequence[Node]] = None,
) -> Dict[Node, float]:
    """Longest-path distance from any source to every node.

    Parameters
    ----------
    nodes, edges:
        The DAG.
    edge_weight:
        Weight contributed by traversing edge ``(u, v)``.
    node_weight:
        Optional weight contributed by *completing* node ``v`` (the
        activity-on-node convention used by the race DAGs of Section 1,
        where each node carries a work value / duration).  When given, the
        distance of a node includes its own node weight.
    sources:
        Optional explicit source set; defaults to all nodes with in-degree 0.

    Returns
    -------
    dict
        ``node -> length of the longest path ending at (and including) node``.
    """
    nodes = list(nodes)
    edges = list(edges)
    order = topological_order(nodes, edges)
    preds: Dict[Node, List[Node]] = {n: [] for n in order}
    for u, v in edges:
        preds[v].append(u)
    indeg0 = {n for n in order if not preds[n]}
    if sources is None:
        source_set: Set[Node] = set(indeg0)
    else:
        source_set = set(sources)
    nw = node_weight if node_weight is not None else (lambda _v: 0.0)
    dist: Dict[Node, float] = {}
    for v in order:
        if v in source_set and not preds[v]:
            dist[v] = nw(v)
            continue
        best = nw(v) if v in source_set else float("-inf")
        for u in preds[v]:
            if u in dist and dist[u] != float("-inf"):
                cand = dist[u] + edge_weight(u, v) + nw(v)
                if cand > best:
                    best = cand
        dist[v] = best
    return dist


def all_ancestors(node: Node, nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> Set[Node]:
    """Return the set of nodes from which ``node`` is reachable (excluding itself)."""
    preds: Dict[Node, List[Node]] = {n: [] for n in nodes}
    for u, v in edges:
        preds.setdefault(v, []).append(u)
        preds.setdefault(u, [])
    seen: Set[Node] = set()
    stack = list(preds.get(node, []))
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(preds.get(u, []))
    return seen


def all_descendants(node: Node, nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> Set[Node]:
    """Return the set of nodes reachable from ``node`` (excluding itself)."""
    succ = _successor_map(nodes, edges)
    seen: Set[Node] = set()
    stack = list(succ.get(node, []))
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(succ.get(u, []))
    return seen
