"""Uniform argument-validation helpers.

All public constructors in the library validate their inputs eagerly so that
modelling mistakes (negative resources, increasing duration functions,
cyclic "DAGs", ...) surface at construction time rather than deep inside an
approximation algorithm.  The helpers below keep those checks terse and the
error messages consistent.
"""

from __future__ import annotations

import math
from typing import Any


class ValidationError(ValueError):
    """Raised when a model object is constructed from invalid inputs."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``.

    Parameters
    ----------
    condition:
        Boolean that must be true.
    message:
        Human-readable description of the violated requirement.
    """
    if not condition:
        raise ValidationError(message)


def check_type(value: Any, types, name: str) -> Any:
    """Check that ``value`` is an instance of ``types`` and return it."""
    if not isinstance(value, types):
        raise ValidationError(
            f"{name} must be an instance of {types!r}, got {type(value).__name__}"
        )
    return value


def check_non_negative(value, name: str):
    """Check that a numeric ``value`` is finite-or-inf and >= 0."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value):
        raise ValidationError(f"{name} must not be NaN")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def check_positive(value, name: str):
    """Check that a numeric ``value`` is strictly positive."""
    check_non_negative(value, name)
    if value <= 0:
        raise ValidationError(f"{name} must be strictly positive, got {value}")
    return value


def check_probability(value, name: str):
    """Check that ``value`` lies in the closed interval [0, 1]."""
    check_non_negative(value, name)
    if value > 1:
        raise ValidationError(f"{name} must be at most 1, got {value}")
    return value


def check_open_unit_interval(value, name: str):
    """Check that ``value`` lies strictly between 0 and 1 (exclusive).

    The bi-criteria rounding parameter ``alpha`` of Theorem 3.4 must satisfy
    ``0 < alpha < 1``; this helper enforces exactly that.
    """
    check_non_negative(value, name)
    if not (0 < value < 1):
        raise ValidationError(f"{name} must lie strictly in (0, 1), got {value}")
    return value
