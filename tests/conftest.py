"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.dag import TradeoffDAG
from repro.core.duration import (
    ConstantDuration,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
)


@pytest.fixture
def simple_chain_dag() -> TradeoffDAG:
    """source -> x (binary, work 64) -> y (k-way, work 36) -> sink."""
    dag = TradeoffDAG()
    dag.add_job("s")
    dag.add_job("x", RecursiveBinarySplitDuration(64))
    dag.add_job("y", KWaySplitDuration(36))
    dag.add_job("t")
    dag.add_edge("s", "x")
    dag.add_edge("x", "y")
    dag.add_edge("y", "t")
    return dag


@pytest.fixture
def diamond_dag() -> TradeoffDAG:
    """A fork-join diamond with two parallel branches of two jobs each."""
    dag = TradeoffDAG()
    dag.add_job("fork")
    dag.add_job("a1", RecursiveBinarySplitDuration(32))
    dag.add_job("a2", KWaySplitDuration(25))
    dag.add_job("b1", RecursiveBinarySplitDuration(48))
    dag.add_job("b2", KWaySplitDuration(16))
    dag.add_job("join")
    dag.add_edge("fork", "a1")
    dag.add_edge("a1", "a2")
    dag.add_edge("fork", "b1")
    dag.add_edge("b1", "b2")
    dag.add_edge("a2", "join")
    dag.add_edge("b2", "join")
    return dag


@pytest.fixture
def figure4_like_dag() -> TradeoffDAG:
    """A small DAG in the spirit of Figure 4: works equal to in-degrees.

    Structure: s -> a -> b -> c -> d -> t plus shortcut edges s->b, a->c,
    b->d giving c the largest in-degree.
    """
    dag = TradeoffDAG()
    works = {"s": 0, "a": 1, "b": 2, "c": 3, "d": 2, "t": 1}
    for name, work in works.items():
        duration = GeneralStepDuration([(0, float(work))]) if work else ConstantDuration(0.0)
        dag.add_job(name, duration)
    for u, v in [("s", "a"), ("a", "b"), ("b", "c"), ("c", "d"), ("d", "t"),
                 ("s", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("c", "t")]:
        # duplicate edge (b, c) is ignored by add_edge; kept to mirror multi-updates
        dag.add_edge(u, v)
    return dag
