"""Tests for the activity-on-arc DAG and the Section 2 / 3.1 transformations."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.arcdag import (
    ArcDAG,
    expand_to_two_tuples,
    node_to_arc_dag,
    section33_binary_tuples,
)
from repro.core.duration import (
    ConstantDuration,
    GeneralStepDuration,
    RecursiveBinarySplitDuration,
)
from repro.core.dag import TradeoffDAG
from repro.utils.validation import ValidationError


class TestArcDAG:
    def test_basic_construction(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", GeneralStepDuration([(0, 3), (2, 0)]))
        dag.add_arc("a", "t", ConstantDuration(0.0), is_dummy=True)
        dag.validate()
        assert dag.num_vertices == 3
        assert dag.num_arcs == 2
        assert len(dag.job_arcs()) == 1
        assert len(dag.two_tuple_arcs()) == 1

    def test_self_loop_rejected(self):
        dag = ArcDAG()
        with pytest.raises(ValidationError):
            dag.add_arc("a", "a")

    def test_dangling_internal_vertex_rejected(self):
        dag = ArcDAG()
        dag.add_arc("s", "a")
        dag.add_vertex("b")
        dag.add_arc("b", "t")
        dag.add_arc("a", "t")
        with pytest.raises(ValidationError):
            dag.validate()  # b has no incoming arc

    def test_duplicate_arc_id_rejected(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", arc_id="e")
        with pytest.raises(ValidationError):
            dag.add_arc("a", "t", arc_id="e")

    def test_total_finite_base_time_skips_infinities(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", GeneralStepDuration([(0, math.inf), (1, 0)]))
        dag.add_arc("a", "t", GeneralStepDuration([(0, 5)]))
        assert dag.total_finite_base_time() == 5


class TestNodeToArc:
    def test_structure(self, simple_chain_dag):
        arc_dag, mapping = node_to_arc_dag(simple_chain_dag)
        # one job arc per job, one dummy per precedence edge
        assert len(mapping.job_arc) == simple_chain_dag.num_jobs
        assert len(mapping.dummy_arcs) == simple_chain_dag.num_edges
        assert arc_dag.num_arcs == simple_chain_dag.num_jobs + simple_chain_dag.num_edges
        arc_dag.validate()

    def test_durations_preserved(self, simple_chain_dag):
        arc_dag, mapping = node_to_arc_dag(simple_chain_dag)
        for job in simple_chain_dag.jobs:
            arc = arc_dag.arc(mapping.job_arc[job])
            assert arc.duration.base_duration == \
                simple_chain_dag.duration_function(job).base_duration

    def test_job_of_arc_lookup(self, simple_chain_dag):
        arc_dag, mapping = node_to_arc_dag(simple_chain_dag)
        arc_id = mapping.job_arc["x"]
        assert mapping.job_of_arc(arc_id) == "x"
        assert mapping.job_of_arc("nonexistent") is None

    def test_multi_terminal_dag_gets_virtual_terminals(self):
        dag = TradeoffDAG()
        for name in ["a", "b", "c", "d"]:
            dag.add_job(name, GeneralStepDuration([(0, 2)]))
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        arc_dag, mapping = node_to_arc_dag(dag)
        arc_dag.validate()
        assert TradeoffDAG.VIRTUAL_SOURCE in [j for j in mapping.job_arc]


class TestTwoTupleExpansion:
    def test_single_tuple_arcs_pass_through_two_tuple_arcs_expand(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", GeneralStepDuration([(0, 3)]))
        improvable = dag.add_arc("a", "t", GeneralStepDuration([(0, 4), (2, 0)]))
        expansion = expand_to_two_tuples(dag)
        # the constant arc is untouched; the improvable arc becomes two chains
        # (the second being the uncapacitated single-tuple pass-through route)
        assert len(expansion.passthrough) == 1
        assert len(expansion.chains) == 1
        pieces = expansion.chains[improvable.arc_id]
        assert len(pieces) == 2
        assert pieces[0].resource_gap == 2
        assert pieces[1].resource_gap is None
        assert expansion.arc_dag.num_arcs == 1 + 4

    def test_multi_tuple_arc_expanded(self):
        dag = ArcDAG()
        fn = GeneralStepDuration([(0, 10), (2, 6), (5, 1)])
        arc = dag.add_arc("s", "t", fn)
        expansion = expand_to_two_tuples(dag)
        pieces = expansion.chains[arc.arc_id]
        assert len(pieces) == 3
        # gaps are the successive resource differences; the last chain has none
        assert pieces[0].resource_gap == 2
        assert pieces[1].resource_gap == 3
        assert pieces[2].resource_gap is None
        assert pieces[0].time_without == 10
        assert pieces[2].time_without == 1
        expansion.arc_dag.validate()
        # every non-dummy arc of the expansion has at most 2 tuples
        for a in expansion.arc_dag.job_arcs():
            assert a.duration.num_tuples() <= 2

    def test_canonical_mapping_back(self):
        """Lemma 3.1: committing resource r_i on the chains yields duration t(r_i)."""
        dag = ArcDAG()
        fn = GeneralStepDuration([(0, 10), (2, 6), (5, 1)])
        arc = dag.add_arc("s", "t", fn)
        expansion = expand_to_two_tuples(dag)
        pieces = expansion.chains[arc.arc_id]
        # give the first chain its full gap: total resource 2, duration should be 6
        flow = {pieces[0].job_arc_id: 2.0}
        assert expansion.original_resource(arc.arc_id, flow) == 2
        assert expansion.original_duration(arc.arc_id, flow) == 6
        # give both improvable chains their gaps: resource 5, duration 1
        flow = {pieces[0].job_arc_id: 2.0, pieces[1].job_arc_id: 3.0}
        assert expansion.original_resource(arc.arc_id, flow) == 5
        assert expansion.original_duration(arc.arc_id, flow) == 1
        # flow in excess of the gap is "passing through" and not attributed
        flow = {pieces[0].job_arc_id: 50.0}
        assert expansion.original_resource(arc.arc_id, flow) == 2

    @given(st.integers(4, 300))
    def test_expansion_of_binary_functions(self, work):
        dag = ArcDAG()
        fn = RecursiveBinarySplitDuration(work)
        arc = dag.add_arc("s", "t", fn)
        expansion = expand_to_two_tuples(dag)
        if fn.num_tuples() < 2:
            assert arc.arc_id in expansion.passthrough
        else:
            pieces = expansion.chains[arc.arc_id]
            assert len(pieces) == fn.num_tuples()
            total_gap = sum(p.resource_gap for p in pieces if p.resource_gap is not None)
            assert total_gap == fn.max_useful_resource()


class TestSection33Tuples:
    def test_structure(self):
        tuples = section33_binary_tuples(64)
        assert tuples[0] == (0.0, 64.0)
        assert tuples[1] == (1.0, 64.0)
        assert tuples[2][0] == 2.0
        # every later breakpoint is 2^j with duration ceil(x / 2^j) + j + 1
        for r, t in tuples[2:]:
            j = int(math.log2(r))
            assert t == math.ceil(64 / 2 ** j) + j + 1
