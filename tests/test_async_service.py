"""Tests for the asyncio serving front (async_service.py + serve.py).

Thread executors keep the suite light and let tests register controllable
in-process solvers (a ``threading.Event``-gated solver makes concurrency
scenarios -- dedup, backpressure, cancellation mid-shard -- deterministic
instead of timing-dependent).  Every async test body runs under
``asyncio.wait_for``, so a deadlocked queue or semaphore fails the test
quickly even without the pytest-timeout plugin; CI additionally runs this
file under ``pytest --timeout`` (the concurrency stress job).
"""

from __future__ import annotations

import asyncio
import json
import threading
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.problem import MinMakespanProblem, MinResourceProblem
from repro.core.problem import TradeoffSolution
from repro.engine import (
    MIN_MAKESPAN,
    AsyncSweepService,
    Portfolio,
    SolutionStore,
    SolveLimits,
    SweepService,
    clear_caches,
    register_solver,
    set_solution_store,
    unregister_solver,
)
from repro.engine.async_service import ASYNC_MANIFEST_METHOD
from repro.engine.service import MANIFEST_SCHEMA_VERSION
from repro.serve import (
    SweepServer,
    problem_from_payload,
    problem_to_payload,
    request_sweep,
)
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def run_async(coro, timeout: float = 30.0):
    """Drive one async test body with a hard deadline (deadlock guard)."""
    async def _bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(_bounded())


def _chain_dag() -> TradeoffDAG:
    dag = TradeoffDAG()
    previous = None
    for name in ("s", "x", "t"):
        dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
        if previous is not None:
            dag.add_edge(previous, name)
        previous = name
    return dag


def _scenarios(budgets=(1.0, 2.0, 3.0)):
    dag = _chain_dag()
    return [MinMakespanProblem(dag, b) for b in budgets]


@contextmanager
def blocking_solver(name="test-blocking", hold: float = 10.0):
    """Register an Event-gated solver: signals when it starts, waits for
    ``release`` before answering, and counts its actual runs."""
    started = threading.Event()
    release = threading.Event()
    calls = []
    lock = threading.Lock()

    @register_solver(name, summary="event-gated test solver",
                     objectives=(MIN_MAKESPAN,), kind="baseline",
                     theorem="-", guarantee="none", priority=996,
                     can_solve=lambda p, s, lim: True)
    def _gated(problem, structure, limits, **options):
        with lock:
            calls.append(problem.budget)
        started.set()
        release.wait(hold)
        return TradeoffSolution(makespan=float(problem.budget),
                                budget_used=0.0, algorithm=name)

    try:
        yield SimpleNamespace(name=name, started=started, release=release,
                              calls=calls)
    finally:
        release.set()
        unregister_solver(name)


def _service(tmp_path=None, **kwargs):
    store = SolutionStore(str(tmp_path / "store")) if tmp_path is not None else None
    kwargs.setdefault("portfolio", Portfolio(executor="thread", max_workers=2))
    return AsyncSweepService(store=store, **kwargs)


async def _wait_event(event: threading.Event, timeout: float = 5.0) -> bool:
    return await asyncio.get_running_loop().run_in_executor(
        None, event.wait, timeout)


class TestAsyncBasics:
    def test_submit_resolves_all_futures_in_batch_order(self, tmp_path):
        async def body():
            async with _service(tmp_path) as service:
                ticket = await service.submit(_scenarios((1.0, 2.0, 3.0, 1.0)))
                results = await ticket.results()
            assert [r.index for r in results] == [0, 1, 2, 3]
            assert all(r.report is not None for r in results)
            assert results[0].key == results[3].key
            assert service.stats.computed == 3
            assert service.stats.deduped == 1
            # duplicate slots never alias the same report object
            results[0].report.allocation["mutated"] = 1.0
            assert "mutated" not in results[3].report.allocation
        run_async(body())

    def test_matches_sync_sweep_service(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0, 4.0))

        async def body():
            async with _service(tmp_path) as service:
                return await (await service.submit(scenarios)).reports()

        async_reports = run_async(body())
        clear_caches()
        with SweepService(portfolio=Portfolio(executor="thread")) as sync_service:
            sync_reports = sync_service.run(scenarios).reports()
        for a, s in zip(async_reports, sync_reports):
            assert a.makespan == pytest.approx(s.makespan)
            assert a.solver_id == s.solver_id

    def test_store_hit_skips_queue(self, tmp_path):
        async def body():
            async with _service(tmp_path) as service:
                first = await (await service.submit(_scenarios((2.0,)))).results()
                assert first[0].source == "computed"
                again = await (await service.submit(_scenarios((2.0,)))).results()
                assert again[0].source == "store"
                assert again[0].report.cache_tier == "store"
            assert service.stats.store_hits == 1
            assert service.stats.computed == 1
        run_async(body())

    def test_per_key_view_and_solve_helper(self, tmp_path):
        async def body():
            async with _service(tmp_path) as service:
                ticket = await service.submit(_scenarios((1.0, 2.0, 1.0)))
                assert len(ticket.per_key) == 2
                assert set(ticket.per_key) == set(ticket.keys)
                report = await service.solve(_scenarios((8.0,))[0])
                assert report.makespan >= 0
        run_async(body())

    def test_failed_scenario_resolves_future_with_error(self, tmp_path):
        async def body():
            service = _service(
                tmp_path, limits=SolveLimits(max_exact_combinations=1))
            async with service:
                ticket = await service.submit(_scenarios((2.0,)),
                                              "exact-enumeration")
                result = await ticket.futures[0]
            assert result.source == "failed"
            assert result.report is None
            assert "ExactSearchLimit" in result.error
            assert service.stats.failed == 1
            with pytest.raises(ValidationError):
                async with _service(
                        tmp_path,
                        limits=SolveLimits(max_exact_combinations=1)) as s2:
                    await s2.solve(_scenarios((2.0,))[0], "exact-enumeration")
        run_async(body())


class TestCrossRequestDedup:
    def test_concurrent_clients_share_one_solve(self):
        with blocking_solver() as solver:
            async def body():
                async with _service() as service:
                    first = await service.submit(_scenarios((5.0,)), solver.name)
                    assert await _wait_event(solver.started)
                    # a second client asks for the same fingerprint while
                    # the first is still solving: no new queue entry
                    second = await service.submit(_scenarios((5.0,)), solver.name)
                    solver.release.set()
                    r1 = (await first.results())[0]
                    r2 = (await second.results())[0]
                assert r1.key == r2.key
                assert r1.report.makespan == r2.report.makespan == 5.0
                assert r1.report is not r2.report
                assert service.stats.deduped == 1
                assert service.stats.computed == 1
                assert service.stats.shards == 1
            run_async(body())
        assert solver.calls == [5.0]  # one actual solver run, two futures


class TestCancellation:
    def test_cancel_mid_shard_still_persists_store_and_manifest(self, tmp_path):
        manifest = str(tmp_path / "manifest.json")
        with blocking_solver() as solver:
            async def body():
                service = _service(tmp_path, manifest=manifest)
                async with service:
                    ticket = await service.submit(_scenarios((7.0,)), solver.name)
                    assert await _wait_event(solver.started)
                    assert ticket.cancel() == 1      # client walks away mid-shard
                    solver.release.set()
                    await service.drain()
                    key = ticket.keys[0]
                    assert ticket.futures[0].cancelled()
                    # the shard completed and persisted despite the cancel
                    assert service.store.get_report(key) is not None
                    assert service.stats.computed == 1
                return ticket.keys[0]
            key = run_async(body())
        data = json.load(open(manifest, encoding="utf-8"))
        assert data["schema"] == MANIFEST_SCHEMA_VERSION
        assert data["method"] == ASYNC_MANIFEST_METHOD
        assert key in data["done"]
        assert data["completed"] is True

    def test_cancelled_waiter_does_not_starve_the_other_client(self):
        with blocking_solver() as solver:
            async def body():
                async with _service() as service:
                    first = await service.submit(_scenarios((5.0,)), solver.name)
                    assert await _wait_event(solver.started)
                    second = await service.submit(_scenarios((5.0,)), solver.name)
                    first.cancel()
                    solver.release.set()
                    result = (await second.results())[0]
                assert result.report.makespan == 5.0
                assert first.futures[0].cancelled()
            run_async(body())

    def test_abandoned_queued_request_is_skipped(self):
        with blocking_solver() as solver:
            async def body():
                service = _service(max_concurrency=1, queue_size=4)
                async with service:
                    # occupy the only shard slot...
                    head = await service.submit(_scenarios((1.0,)), solver.name)
                    assert await _wait_event(solver.started)
                    # ...queue a second request and abandon it pre-dispatch
                    queued = await service.submit(_scenarios((2.0,)), solver.name)
                    queued.cancel()
                    solver.release.set()
                    await service.drain()
                    assert (await head.results())[0].report is not None
                assert service.stats.cancelled == 1
                assert solver.calls == [1.0]  # the abandoned solve never ran
            run_async(body())


class TestBackpressure:
    def test_cancelled_producer_does_not_orphan_its_request_key(self):
        # Regression: a submit() cancelled while blocked at the full queue
        # must retract its in-flight entry, or every later submit of the
        # same key would dedup onto a dead entry and hang forever.
        with blocking_solver() as solver:
            async def body():
                service = _service(max_concurrency=1, queue_size=1)
                async with service:
                    # worker busy (1.0), dispatcher stalled (2.0), queue
                    # full (3.0) -- then 4.0 blocks at the backpressure
                    # point and gets cancelled there.
                    await service.submit(_scenarios((1.0, 2.0, 3.0)),
                                         solver.name)
                    assert await _wait_event(solver.started)
                    producer = asyncio.create_task(
                        service.submit(_scenarios((4.0,)), solver.name))
                    await asyncio.sleep(0.2)
                    assert not producer.done()
                    producer.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await producer
                    assert service.inflight_count() == 3  # 4.0 retracted
                    solver.release.set()
                    # re-submitting the cancelled key must solve, not hang
                    retry = await service.submit(_scenarios((4.0,)),
                                                 solver.name)
                    result = await asyncio.wait_for(retry.futures[0], 10)
                assert result.report.makespan == 4.0
            run_async(body())

    def test_full_queue_blocks_the_producer(self):
        with blocking_solver() as solver:
            async def body():
                service = _service(max_concurrency=1, queue_size=1)
                async with service:
                    # scenario 1 occupies the worker; the dispatcher pops
                    # scenario 2 and stalls on the semaphore; scenario 3
                    # fills the queue; scenario 4 must block the producer.
                    producer = asyncio.create_task(
                        service.submit(_scenarios((1.0, 2.0, 3.0, 4.0)),
                                       solver.name))
                    assert await _wait_event(solver.started)
                    await asyncio.sleep(0.3)
                    assert not producer.done(), \
                        "submit() must block once the bounded queue is full"
                    assert service.queue_depth() == 1
                    solver.release.set()
                    ticket = await producer
                    results = await ticket.results()
                assert [r.report.makespan for r in results] == [1.0, 2.0, 3.0, 4.0]
                assert service.stats.computed == 4
            run_async(body())


class TestGracefulDrain:
    def test_aclose_resolves_everything_then_refuses_work(self, tmp_path):
        async def body():
            service = _service(tmp_path)
            await service.start()
            ticket = await service.submit(_scenarios((1.0, 2.0, 3.0)))
            await service.aclose()   # graceful: drains before shutdown
            results = await ticket.results()
            assert all(r.report is not None for r in results)
            assert service.closed
            with pytest.raises(RuntimeError, match="closed"):
                await service.submit(_scenarios((4.0,)))
            await service.aclose()   # idempotent
        run_async(body())

    def test_drain_then_stats_settle(self, tmp_path):
        async def body():
            async with _service(tmp_path) as service:
                await service.submit(_scenarios((1.0, 2.0)))
                await service.drain()
                assert service.queue_depth() == 0
                assert service.inflight_count() == 0
                assert service.stats.computed == 2
        run_async(body())


class TestClosedStateErrors:
    def test_sweep_service_raises_after_close(self, tmp_path):
        service = SweepService(store=SolutionStore(str(tmp_path / "s")),
                               portfolio=Portfolio(executor="thread"))
        service.run(_scenarios((1.0,)))
        service.close()
        assert service.closed
        with pytest.raises(RuntimeError, match="closed"):
            service.sweep(_scenarios((2.0,)))   # raises at call, not first next()
        with pytest.raises(RuntimeError, match="closed"):
            service.run(_scenarios((2.0,)))

    def test_portfolio_raises_after_close(self):
        portfolio = Portfolio(executor="thread")
        portfolio.start()
        portfolio.close()
        assert portfolio.closed
        problems = _scenarios((1.0,))
        with pytest.raises(RuntimeError, match="closed"):
            portfolio.map(problems)
        with pytest.raises(RuntimeError, match="closed"):
            portfolio.solve(problems[0])
        with pytest.raises(RuntimeError, match="closed"):
            portfolio.submit_shard(problems)
        with pytest.raises(RuntimeError, match="closed"):
            portfolio.shard_task(problems)
        # start() reopens the portfolio for reuse
        portfolio.start()
        try:
            assert portfolio.map(problems)[0].makespan >= 0
        finally:
            portfolio.close()


class TestMetricsSnapshot:
    def test_snapshot_tiers_sum_to_requests_on_mixed_run(self, tmp_path):
        """snapshot(): requests == deduped + store_hits + computed +
        failed + cancelled after a mixed warm/cold submit_specs run."""
        from repro.scenarios import Axis, ScenarioGrid

        grid = ScenarioGrid(
            generators=({"generator": "fork-join",
                         "params": {"width": Axis([2, 3]), "work": 4}},),
            budget_rules=(("makespan-factor", 0.5),))

        async def body():
            service = _service(tmp_path,
                               limits=SolveLimits(max_exact_combinations=1))
            async with service:
                await (await service.submit_specs(grid)).results()  # cold
                await (await service.submit_specs(grid)).results()  # warm
                # in-batch duplicate -> tier-0 dedup
                await (await service.submit(
                    _scenarios((1.0, 2.0, 1.0)))).results()
                # a failing slot -> failed
                failing = await service.submit(_scenarios((9.0,)),
                                               "exact-enumeration")
                assert (await failing.results())[0].source == "failed"
                await service.drain()
                snapshot = service.snapshot()
            stats = snapshot["service"]
            assert stats["requests"] == (
                stats["deduped"] + stats["store_hits"] + stats["computed"]
                + stats["failed"] + stats["cancelled"])
            assert stats["requests"] == 2 * grid.size() + 3 + 1
            assert stats["store_hits"] == grid.size()
            assert stats["computed"] == grid.size() + 2
            assert stats["deduped"] == 1
            assert stats["failed"] == 1
            assert stats["queue_depth"] == 0 and stats["inflight"] == 0
            assert snapshot["snapshot_schema"] == 1
            assert snapshot["store"]["writes"] >= grid.size()
            for section in ("service", "store", "lru", "kernels",
                            "materializations"):
                assert section in snapshot
            # the snapshot is JSON-serializable as-is (the wire contract)
            json.dumps(snapshot)
        run_async(body())


class TestWireProtocol:
    def test_problem_payload_round_trip_preserves_fingerprints(self):
        from repro.engine.fingerprint import dag_fingerprint

        scenarios = _scenarios((1.0, 2)) + [MinResourceProblem(_chain_dag(), 6.0)]
        for problem in scenarios:
            blob = json.dumps(problem_to_payload(problem))
            back = problem_from_payload(json.loads(blob))
            assert type(back) is type(problem)
            assert dag_fingerprint(back.dag) == dag_fingerprint(problem.dag)

    def test_malformed_payload_raises(self):
        with pytest.raises(ValidationError):
            problem_from_payload({"objective": "nope"})
        with pytest.raises(ValidationError):
            problem_from_payload({"objective": "min_makespan",
                                  "parameter": "two", "jobs": [["s", [[0, 1]]]]})
        with pytest.raises(ValidationError):
            problem_from_payload({"objective": "min_makespan",
                                  "parameter": 2.0, "jobs": []})

    def test_server_round_trip_over_tcp(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0, 1.0))

        async def body():
            service = _service(tmp_path)
            async with SweepServer(service, port=0) as server:
                responses = await request_sweep(scenarios, port=server.port)
                assert [r["index"] for r in responses] == [0, 1, 2]
                assert all(r["report"] is not None for r in responses)
                assert (responses[0]["report"]["solution"]["makespan"]
                        == responses[2]["report"]["solution"]["makespan"])
                # second client: same scenarios are now persistent-store hits
                again = await request_sweep(scenarios, port=server.port)
                assert {r["source"] for r in again} == {"store"}
            assert service.closed   # server shutdown closes the service
        run_async(body())

    def test_failed_scenario_is_a_result_slot_not_a_request_error(self, tmp_path):
        # Regression: request_sweep must not mistake a per-scenario failure
        # line for a request-level error (and discard the good results).
        tiny = TradeoffDAG()
        tiny.add_job("s")
        tiny.add_job("x", ConstantDuration(3.0))
        tiny.add_job("t")
        tiny.add_edge("s", "x")
        tiny.add_edge("x", "t")
        good = MinMakespanProblem(tiny, 2.0)
        bad = MinMakespanProblem(_chain_dag(), 2.0)

        async def body():
            service = _service(
                tmp_path, limits=SolveLimits(max_exact_combinations=1))
            async with SweepServer(service, port=0) as server:
                responses = await request_sweep([good, bad, good],
                                                port=server.port,
                                                method="exact-enumeration")
            assert [r["index"] for r in responses] == [0, 1, 2]
            assert responses[0]["report"] is not None
            assert responses[2]["report"] is not None
            assert responses[1]["source"] == "failed"
            assert responses[1]["report"] is None
            assert "ExactSearchLimit" in responses[1]["error"]
        run_async(body())

    def test_server_reports_request_errors(self, tmp_path):
        async def body():
            service = _service(tmp_path)
            async with SweepServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                bad = {"op": "sweep", "id": "bad", "scenarios": [{"objective": "nope"}]}
                writer.write((json.dumps(bad) + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["id"] == "bad"
                assert "error" in response
                writer.close()
                await writer.wait_closed()
        run_async(body())
