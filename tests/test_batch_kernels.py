"""Kernel-equivalence tests for the batched solve layer (engine/batch.py).

The vectorized DP kernels and the skeleton-backed LP path are pure
performance work: every result must match the pre-existing scalar paths
bit for bit -- merged tables, split indices, LP flows/times and full
solution allocations included.  These property tests pin that contract
across randomized SP trees, duration families and budget sweeps.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.series_parallel as sp
from repro.core.arcdag import ArcDAG, expand_to_two_tuples, node_to_arc_dag
from repro.core.dag import TradeoffDAG
from repro.core.duration import (
    ConstantDuration,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
)
from repro.core.lp import (
    LPModelSkeleton,
    available_lp_backends,
    lp_kernel_counters,
    solve_min_makespan_lp,
    solve_min_makespan_sweep,
    solve_min_resource_lp,
    solve_min_resource_sweep,
)
from repro.core.problem import MinMakespanProblem
from repro.core.series_parallel import (
    SPLeaf,
    _leaf_table,
    _leaf_table_scalar,
    _parallel_merge,
    _parallel_merge_scalar,
    sp_exact_min_makespan,
)
from repro.engine.batch import get_lp_skeleton, solve_lp_batch
from repro.engine.core import clear_caches, solve
from repro.generators import random_sp_tree


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def non_increasing_table(rng: np.random.RandomState, size: int,
                         with_inf: bool) -> np.ndarray:
    values = rng.uniform(0.0, 50.0, size)
    if with_inf:
        values[rng.uniform(size=size) < 0.2] = np.inf
    if rng.uniform() < 0.3:  # ties exercise first-argmin tie-breaking
        values = np.round(values / 10.0) * 10.0
    return np.maximum.accumulate(values[::-1])[::-1]


def simple_lp_arcdag() -> ArcDAG:
    dag = ArcDAG()
    dag.add_arc("s", "a", GeneralStepDuration([(0, 10), (5, 0)]), arc_id="e1")
    dag.add_arc("s", "b", GeneralStepDuration([(0, 7), (2, 0)]), arc_id="e2")
    dag.add_arc("a", "t", GeneralStepDuration([(0, 6), (3, 0)]), arc_id="e3")
    dag.add_arc("b", "t", GeneralStepDuration([(0, 9), (4, 0)]), arc_id="e4")
    return dag


# ----------------------------------------------------------------------
# DP kernels
# ----------------------------------------------------------------------
class TestParallelMergeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 80), st.integers(0, 10_000), st.booleans())
    def test_matches_scalar_on_random_tables(self, budget, seed, with_inf):
        rng = np.random.RandomState(seed)
        t1 = non_increasing_table(rng, budget + 1, with_inf)
        t2 = non_increasing_table(rng, budget + 1, with_inf)
        merged_v, split_v = _parallel_merge(t1, t2)
        merged_s, split_s = _parallel_merge_scalar(t1, t2)
        assert np.array_equal(merged_v, merged_s)
        assert np.array_equal(split_v, split_s)

    @pytest.mark.parametrize("budget", [0, 1, 255, 256, 257, 600])
    def test_chunk_boundaries(self, budget):
        """The chunked reduction must be seamless across chunk edges."""
        rng = np.random.RandomState(budget)
        t1 = non_increasing_table(rng, budget + 1, False)
        t2 = non_increasing_table(rng, budget + 1, False)
        assert np.array_equal(_parallel_merge(t1, t2)[0],
                              _parallel_merge_scalar(t1, t2)[0])
        assert np.array_equal(_parallel_merge(t1, t2)[1],
                              _parallel_merge_scalar(t1, t2)[1])

    def test_all_infinite_rows_pick_index_zero(self):
        t1 = np.full(4, np.inf)
        t2 = np.full(4, np.inf)
        merged, split = _parallel_merge(t1, t2)
        merged_s, split_s = _parallel_merge_scalar(t1, t2)
        assert np.array_equal(merged, merged_s)
        assert np.array_equal(split, split_s)
        assert (split == 0).all()


class TestLeafTableEquivalence:
    @pytest.mark.parametrize("duration", [
        ConstantDuration(5.0),
        GeneralStepDuration([(0, 10), (2, 4), (5, 1), (9, 0)]),
        KWaySplitDuration(36),
        RecursiveBinarySplitDuration(64),
        GeneralStepDuration([(0, math.inf), (3, 2)]),
    ])
    @pytest.mark.parametrize("budget", [0, 1, 7, 40])
    def test_matches_scalar_for_every_family(self, duration, budget):
        leaf = SPLeaf("x", duration)
        assert np.array_equal(_leaf_table(leaf, budget),
                              _leaf_table_scalar(leaf, budget))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 50)),
                    min_size=1, max_size=6),
           st.integers(0, 30))
    def test_matches_scalar_on_random_step_functions(self, pairs, budget):
        pairs = [(0, 50)] + [(r, t) for r, t in pairs]
        leaf = SPLeaf("x", GeneralStepDuration(pairs))
        assert np.array_equal(_leaf_table(leaf, budget),
                              _leaf_table_scalar(leaf, budget))


class TestDPEndToEnd:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 7), st.integers(0, 12), st.integers(0, 1000))
    def test_solutions_identical_with_scalar_kernels(self, jobs, budget, seed):
        tree = random_sp_tree(jobs, family="general", seed=seed, max_base=12)
        vectorized = sp_exact_min_makespan(tree, budget)
        # Swap both kernels for their scalar references and re-run.
        original = (sp._parallel_merge, sp._leaf_table)
        sp._parallel_merge = sp._parallel_merge_scalar
        sp._leaf_table = sp._leaf_table_scalar
        try:
            scalar = sp_exact_min_makespan(tree, budget)
        finally:
            sp._parallel_merge, sp._leaf_table = original
        assert vectorized.makespan == scalar.makespan
        assert vectorized.budget_used == scalar.budget_used
        assert vectorized.allocation == scalar.allocation
        assert np.array_equal(vectorized.metadata["table"],
                              scalar.metadata["table"])


# ----------------------------------------------------------------------
# LP skeleton
# ----------------------------------------------------------------------
class TestLPSkeletonEquivalence:
    def test_budget_sweep_matches_fresh_solves(self):
        dag = simple_lp_arcdag()
        skeleton = LPModelSkeleton(dag)
        for budget in [0.0, 1.0, 2.5, 4.0, 8.0, 100.0]:
            reused = skeleton.solve_min_makespan(budget)
            fresh = solve_min_makespan_lp(dag, budget)
            assert reused.status == fresh.status
            assert reused.objective == fresh.objective
            assert reused.flows == fresh.flows
            assert reused.times == fresh.times
            assert reused.makespan == fresh.makespan
            assert reused.budget_used == fresh.budget_used

    def test_target_sweep_matches_fresh_solves(self):
        dag = simple_lp_arcdag()
        skeleton = LPModelSkeleton(dag)
        for target in [0.0, 4.0, 9.5, 16.0, 50.0]:
            reused = skeleton.solve_min_resource(target)
            fresh = solve_min_resource_lp(dag, target)
            assert reused.status == fresh.status
            assert reused.objective == fresh.objective
            assert reused.flows == fresh.flows
            assert reused.times == fresh.times

    def test_infeasible_target_still_infeasible(self):
        dag = ArcDAG()
        dag.add_arc("s", "t", GeneralStepDuration([(0, 5)]), arc_id="e")
        skeleton = LPModelSkeleton(dag)
        assert skeleton.solve_min_resource(1.0).status == "infeasible"
        assert solve_min_resource_lp(dag, 1.0).status == "infeasible"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 6), st.integers(0, 500))
    def test_random_dags_match(self, jobs, seed):
        tree = random_sp_tree(jobs, family="general", seed=seed, max_base=10)
        arc_dag, _ = node_to_arc_dag(tree.to_dag())
        expanded = expand_to_two_tuples(arc_dag).arc_dag
        skeleton = LPModelSkeleton(expanded)
        for budget in (0.0, 2.0, 5.0):
            reused = skeleton.solve_min_makespan(budget)
            fresh = solve_min_makespan_lp(expanded, budget)
            assert reused.objective == fresh.objective
            assert reused.flows == fresh.flows

    def test_skeleton_cache_shares_models_by_content(self):
        clear_caches()
        a = simple_lp_arcdag()
        b = simple_lp_arcdag()  # distinct object, identical content
        assert get_lp_skeleton(a) is get_lp_skeleton(b)
        assert get_lp_skeleton(a) is get_lp_skeleton(a)  # identity fast path


# ----------------------------------------------------------------------
# warm-started sweep kernels
# ----------------------------------------------------------------------
class TestWarmSweeps:
    BUDGETS = [0.0, 1.0, 2.5, 2.5, 4.0, 8.0]  # includes a repeated RHS
    TARGETS = [0.0, 4.0, 9.5, 16.0, 16.0, 50.0]

    def _assert_identical(self, got, want):
        assert got.status == want.status
        assert got.objective == want.objective
        assert got.flows == want.flows
        assert got.times == want.times
        assert got.makespan == want.makespan
        assert got.budget_used == want.budget_used

    def test_budget_sweep_bit_identical_to_scalar_scipy(self):
        dag = simple_lp_arcdag()
        swept = solve_min_makespan_sweep(dag, self.BUDGETS)
        assert len(swept) == len(self.BUDGETS)
        for budget, solution in zip(self.BUDGETS, swept):
            self._assert_identical(solution, solve_min_makespan_lp(dag, budget))

    def test_target_sweep_bit_identical_to_scalar_scipy(self):
        dag = simple_lp_arcdag()
        swept = solve_min_resource_sweep(dag, self.TARGETS)
        for target, solution in zip(self.TARGETS, swept):
            self._assert_identical(solution, solve_min_resource_lp(dag, target))

    def test_sweep_counts_warm_start_hits(self):
        clear_caches()
        skeleton = get_lp_skeleton(simple_lp_arcdag())
        skeleton.solve_min_makespan_sweep(self.BUDGETS)
        counters = lp_kernel_counters()
        assert counters["sweep_solves"] == len(self.BUDGETS)
        # the acceptance gate: every solve after the first runs warm
        assert counters["warm_start_hits"] >= len(self.BUDGETS) - 1
        # the one repeated budget is answered from the sweep memo
        assert counters["warm_reuse_hits"] == 1
        # the memo never collapses *distinct* RHS values into one solve
        assert counters["skeleton_solves"] == len(set(self.BUDGETS))

    def test_memo_answers_are_copies(self):
        skeleton = LPModelSkeleton(simple_lp_arcdag())
        first, second = skeleton.solve_min_makespan_sweep([2.0, 2.0])
        assert first is not second
        assert first.flows == second.flows
        second.flows["poisoned"] = 1.0  # a caller mutation must not leak
        assert "poisoned" not in skeleton.solve_min_makespan_sweep([2.0])[0].flows

    def test_infeasible_then_feasible_targets(self):
        dag = ArcDAG()
        dag.add_arc("s", "t", GeneralStepDuration([(0, 5), (3, 1)]), arc_id="e")
        skeleton = LPModelSkeleton(dag)
        swept = skeleton.solve_min_resource_sweep([0.5, 1.0, 5.0])
        assert [s.status for s in swept] == ["infeasible", "optimal", "optimal"]

    def test_unknown_backend_rejected(self):
        skeleton = LPModelSkeleton(simple_lp_arcdag())
        with pytest.raises(Exception):
            skeleton.solve_min_makespan_sweep([1.0], backend="glpk")

    def test_backend_listing(self):
        backends = available_lp_backends()
        assert "scipy" in backends
        assert set(backends) <= {"scipy", "highspy"}

    def test_certificates_pass_on_warm_routed_solves(self):
        # engine-level: the CachedLPBackend now routes through the warm
        # kernel; certificate checks must still pass for every budget.
        dag = layered_dag(2)
        clear_caches()
        for budget in (2.0, 4.0, 7.0, 4.0):
            report = solve(MinMakespanProblem(dag, budget),
                           method="bicriteria-lp", alpha=0.5, use_cache=False)
            assert report.certificate is not None
            assert report.certificate.passed


# ----------------------------------------------------------------------
# the batched entry point
# ----------------------------------------------------------------------
def layered_dag(scale: int) -> TradeoffDAG:
    dag = TradeoffDAG()
    dag.add_job("s")
    dag.add_job("x", GeneralStepDuration([(0, 8 * scale), (2, 3 * scale), (4, scale)]))
    dag.add_job("y", GeneralStepDuration([(0, 6 * scale), (3, 2 * scale)]))
    dag.add_job("t")
    dag.add_edge("s", "x")
    dag.add_edge("s", "y")
    dag.add_edge("x", "t")
    dag.add_edge("y", "t")
    return dag


class TestSolveLpBatch:
    def test_matches_sequential_solve_bit_for_bit(self):
        dag_a, dag_b = layered_dag(1), layered_dag(2)
        problems = [MinMakespanProblem(dag, budget)
                    for dag in (dag_a, dag_b)
                    for budget in (2.0, 4.0, 7.0, 4.0)]  # includes a repeat
        clear_caches()
        batched = solve_lp_batch(problems, method="bicriteria-lp",
                                 options={"alpha": 0.5})
        clear_caches()
        sequential = [solve(p, method="bicriteria-lp", alpha=0.5, use_cache=False)
                      for p in problems]
        assert len(batched) == len(problems)
        for (report, error), reference in zip(batched, sequential):
            assert error is None
            assert report.makespan == reference.makespan
            assert report.budget_used == reference.budget_used
            assert report.allocation == reference.allocation

    def test_one_skeleton_build_per_dag_group(self):
        dag = layered_dag(3)
        problems = [MinMakespanProblem(dag, b) for b in (1.0, 2.0, 3.0, 4.0, 5.0)]
        clear_caches()
        solve_lp_batch(problems, method="bicriteria-lp", options={"alpha": 0.5})
        counters = lp_kernel_counters()
        assert counters["skeleton_builds"] == 1
        assert counters["skeleton_solves"] == len(problems)

    def test_content_equal_dag_objects_share_one_group(self):
        # Pickled shard copies of one workload are distinct objects with the
        # same content; the fingerprint grouping must merge them.
        problems = [MinMakespanProblem(layered_dag(1), b) for b in (2.0, 3.0, 5.0)]
        clear_caches()
        solve_lp_batch(problems, method="bicriteria-lp", options={"alpha": 0.5})
        counters = lp_kernel_counters()
        assert counters["skeleton_builds"] == 1
        assert counters["skeleton_solves"] == len(problems)

    def test_per_scenario_errors_are_captured(self):
        dag = layered_dag(1)
        problems = [MinMakespanProblem(dag, 4.0), MinMakespanProblem(dag, 2.5)]
        # Direct dispatch of the SP DP rejects non-integral budgets; the
        # failing scenario must not lose its shard-mate's result.
        results = solve_lp_batch(problems, method="series-parallel-dp")
        assert results[0][0] is not None and results[0][1] is None
        assert results[1][0] is None and "integral budget" in results[1][1]

    def test_bad_scenario_does_not_lose_its_shard_mates(self):
        # A scenario whose DAG fails validation (cycle added after
        # construction) must surface as a per-scenario error while the
        # rest of the shard completes.
        good = MinMakespanProblem(layered_dag(1), 4.0)
        bad = MinMakespanProblem(layered_dag(1), 4.0)
        bad.dag.add_edge("t", "s")  # invalidated after construction
        results = solve_lp_batch([good, bad, good],
                                 method="bicriteria-lp", options={"alpha": 0.5})
        assert results[0][0] is not None and results[0][1] is None
        assert results[1][0] is None and "cycle" in results[1][1]
        assert results[2][0] is not None and results[2][1] is None

    def test_auto_dispatch_results_match_sequential(self):
        problems = [MinMakespanProblem(layered_dag(s), b)
                    for s in (1, 2) for b in (2.0, 6.0)]
        clear_caches()
        batched = solve_lp_batch(problems)
        clear_caches()
        sequential = [solve(p, use_cache=False) for p in problems]
        for (report, error), reference in zip(batched, sequential):
            assert error is None
            assert report.solver_id == reference.solver_id
            assert report.makespan == reference.makespan
            assert report.allocation == reference.allocation
