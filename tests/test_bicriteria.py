"""Tests for the bi-criteria LP-rounding algorithm (Theorem 3.4)."""

from __future__ import annotations

import math

import pytest

from repro.core.bicriteria import solve_min_makespan_bicriteria, solve_min_resource_bicriteria
from repro.core.exact import exact_min_makespan
from repro.generators import get_workload, layered_random_dag
from repro.utils.validation import ValidationError


SMALL_WORKLOADS = ["small-layered-general", "small-layered-binary", "small-layered-kway",
                   "deep-chain-binary", "deep-chain-kway"]


class TestGuarantees:
    @pytest.mark.parametrize("name", SMALL_WORKLOADS)
    @pytest.mark.parametrize("alpha", [0.25, 0.5, 0.75])
    def test_bicriteria_guarantees_hold(self, name, alpha):
        """makespan <= (1/alpha) * LP and budget <= (1/(1-alpha)) * B (Theorem 3.4)."""
        workload = get_workload(name)
        dag = workload.build()
        budget = workload.budget
        solution = solve_min_makespan_bicriteria(dag, budget, alpha)
        lp_makespan = solution.metadata["lp_makespan"]
        assert solution.makespan <= lp_makespan / alpha + 1e-6
        assert solution.budget_used <= budget / (1 - alpha) + 1e-6
        # the LP optimum is a valid lower bound on OPT, hence on our makespan too
        assert solution.makespan >= lp_makespan - 1e-6

    @pytest.mark.parametrize("name", ["small-layered-general", "small-layered-binary"])
    def test_against_exact_optimum(self, name):
        workload = get_workload(name)
        dag = workload.build()
        budget = workload.budget
        solution = solve_min_makespan_bicriteria(dag, budget, alpha=0.5)
        exact = exact_min_makespan(dag, budget)
        # with alpha = 1/2 the makespan is within 2x of OPT (for the budget it uses)
        assert solution.makespan <= 2 * exact.makespan + 1e-6

    def test_zero_budget_equals_no_resource(self, diamond_dag):
        solution = solve_min_makespan_bicriteria(diamond_dag, budget=0, alpha=0.5)
        assert solution.makespan == pytest.approx(diamond_dag.makespan_value({}))
        assert solution.budget_used == 0

    def test_allocation_is_consistent_with_makespan(self, diamond_dag):
        """Evaluating the returned allocation on the node DAG never beats the
        reported makespan (the arc-level schedule is at least as constrained)."""
        solution = solve_min_makespan_bicriteria(diamond_dag, budget=16, alpha=0.5)
        node_makespan = diamond_dag.makespan_value(
            {k: v for k, v in solution.allocation.items() if k in diamond_dag.jobs})
        assert node_makespan <= solution.makespan + 1e-6

    def test_invalid_alpha_rejected(self, diamond_dag):
        with pytest.raises(ValidationError):
            solve_min_makespan_bicriteria(diamond_dag, budget=4, alpha=0.0)
        with pytest.raises(ValidationError):
            solve_min_makespan_bicriteria(diamond_dag, budget=4, alpha=1.0)

    def test_negative_budget_rejected(self, diamond_dag):
        with pytest.raises(ValidationError):
            solve_min_makespan_bicriteria(diamond_dag, budget=-1)

    def test_monotone_improvement_with_budget(self):
        dag = layered_random_dag(3, 3, family="binary", seed=5)
        previous = math.inf
        for budget in [0, 4, 8, 16, 32]:
            solution = solve_min_makespan_bicriteria(dag, budget, alpha=0.5)
            # LP lower bound is monotone; the rounded makespan is monotone up to
            # the 1/alpha slack, so only assert against the guarantee.
            assert solution.makespan <= 2 * solution.metadata["lp_makespan"] + 1e-6
            assert solution.metadata["lp_makespan"] <= previous + 1e-9
            previous = solution.metadata["lp_makespan"]


class TestMinResourceVariant:
    def test_guarantees(self, diamond_dag):
        target = 40.0
        solution = solve_min_resource_bicriteria(diamond_dag, target, alpha=0.5)
        assert solution.makespan <= target / 0.5 + 1e-6
        lp_budget = solution.metadata["lp_budget_used"]
        assert solution.budget_used <= lp_budget / 0.5 + 1e-6

    def test_loose_target_uses_no_resource(self, diamond_dag):
        target = diamond_dag.makespan_value({}) + 1
        solution = solve_min_resource_bicriteria(diamond_dag, target, alpha=0.5)
        assert solution.budget_used == pytest.approx(0)

    def test_infeasible_target_reported(self):
        from repro.core.dag import TradeoffDAG
        from repro.core.duration import GeneralStepDuration

        dag = TradeoffDAG()
        dag.add_job("s")
        dag.add_job("fixed", GeneralStepDuration([(0, 10)]))
        dag.add_job("t")
        dag.add_edge("s", "fixed")
        dag.add_edge("fixed", "t")
        solution = solve_min_resource_bicriteria(dag, target_makespan=1, alpha=0.5)
        assert math.isinf(solution.makespan)
        assert solution.metadata["status"] == "infeasible"
