"""Tests for the multi-runner sweep cluster (repro.cluster).

The ring, address parsing and metric aggregation are pure computation and
tested exhaustively.  The integration classes run a real 3-runner
unix-socket :class:`~repro.cluster.runners.LocalCluster` (the CI
``cluster-stress`` job's topology) and pin the acceptance contract:
routing affinity, bit-identical results against a single-runner sweep
over the same warm store, runner-kill failover with store-backed
recovery, and store integrity under concurrent writers.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import (
    ClusterClient,
    HashRing,
    LocalCluster,
    RouterServer,
    RunnerAddress,
    aggregate_metrics,
)
from repro.cluster.router import spec_route_key
from repro.engine import Portfolio, clear_caches, set_solution_store
from repro.engine.async_service import AsyncSweepService
from repro.engine.store import report_to_payload
from repro.scenarios import Axis, ScenarioGrid
from repro.serve import request_metrics, request_sweep_spec
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def run_async(coro, timeout: float = 90.0):
    async def _bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(_bounded())


async def wait_until(predicate, timeout: float = 30.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition not reached in time"
        await asyncio.sleep(0.005)


GRID = ScenarioGrid(
    generators=({"generator": "fork-join",
                 "params": {"width": Axis([2, 3, 4]),
                            "work": Axis([4, 6])}},),
    budget_rules=(("makespan-factor", 0.5), ("makespan-factor", 0.75)),
)  # 12 cells


# ---------------------------------------------------------------------------
# the ring
# ---------------------------------------------------------------------------

class TestHashRing:
    KEYS = [f"key-{i:04d}" for i in range(400)]

    def test_deterministic_across_instances(self):
        a = HashRing(["r0", "r1", "r2"])
        b = HashRing(["r2", "r0", "r1"])  # insertion order must not matter
        assert [a.route(k) for k in self.KEYS] == \
               [b.route(k) for k in self.KEYS]

    def test_every_node_owns_a_share(self):
        ring = HashRing(["r0", "r1", "r2"])
        shares = ring.shares(self.KEYS)
        assert set(shares) == {"r0", "r1", "r2"}
        assert all(count > 0 for count in shares.values())
        assert sum(shares.values()) == len(self.KEYS)

    def test_remove_moves_only_the_leavers_keys(self):
        ring = HashRing(["r0", "r1", "r2"])
        before = {k: ring.route(k) for k in self.KEYS}
        ring.remove("r1")
        for key in self.KEYS:
            if before[key] != "r1":
                assert ring.route(key) == before[key]
            else:
                assert ring.route(key) in ("r0", "r2")

    def test_preference_is_the_rebalance_rule(self):
        ring = HashRing(["r0", "r1", "r2"])
        prefs = {k: ring.preference(k) for k in self.KEYS}
        for key, order in prefs.items():
            assert order[0] == ring.route(key)
            assert sorted(order) == ["r0", "r1", "r2"]  # distinct, complete
        ring.remove("r0")
        for key in self.KEYS:
            expected = next(n for n in prefs[key] if n != "r0")
            assert ring.route(key) == expected

    def test_add_is_the_inverse_of_remove(self):
        ring = HashRing(["r0", "r1", "r2"])
        before = {k: ring.route(k) for k in self.KEYS}
        ring.remove("r2")
        ring.add("r2")
        assert {k: ring.route(k) for k in self.KEYS} == before

    def test_validation(self):
        with pytest.raises(ValidationError):
            HashRing(vnodes=0)
        with pytest.raises(ValidationError):
            HashRing([""])
        with pytest.raises(ValidationError):
            HashRing().route("anything")
        ring = HashRing(["solo"])
        assert ring.route("k") == "solo"
        assert ring.preference("k", limit=5) == ["solo"]


# ---------------------------------------------------------------------------
# runner addresses
# ---------------------------------------------------------------------------

class TestRunnerAddress:
    def test_parse_forms(self):
        unix = RunnerAddress.parse("unix:/tmp/r.sock")
        assert unix.unix_socket == "/tmp/r.sock" and unix.name == "unix:/tmp/r.sock"
        tcp = RunnerAddress.parse("10.0.0.5:7341", name="r1")
        assert (tcp.host, tcp.port, tcp.name) == ("10.0.0.5", 7341, "r1")
        bare = RunnerAddress.parse("7341")
        assert (bare.host, bare.port) == ("127.0.0.1", 7341)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RunnerAddress.parse("not a spec")
        with pytest.raises(ValidationError):
            RunnerAddress(name="r", port=1, unix_socket="/x")
        with pytest.raises(ValidationError):
            RunnerAddress(name="r")
        with pytest.raises(ValidationError):
            RunnerAddress(name="", port=1)


# ---------------------------------------------------------------------------
# metric aggregation
# ---------------------------------------------------------------------------

class TestAggregateMetrics:
    def test_sums_counters_and_keeps_runners(self):
        merged = aggregate_metrics({
            "r0": {"service": {"requests": 3, "computed": 1}, "ok": True,
                   "runner": "r0"},
            "r1": {"service": {"requests": 5, "computed": 2}, "ok": True,
                   "runner": "r1"},
        })
        assert merged["service"] == {"requests": 8, "computed": 3}
        assert merged["ok"] is True          # bools AND, never sum
        assert merged["runner"] is None      # differing strings degrade
        assert sorted(merged["runners"]) == ["r0", "r1"]
        assert merged["runners"]["r0"]["service"]["requests"] == 3

    def test_key_union_and_missing_sections(self):
        merged = aggregate_metrics({
            "r0": {"store": {"writes": 2}, "schema": "v1"},
            "r1": {"store": None, "schema": "v1"},
        })
        assert merged["store"] == {"writes": 2}
        assert merged["schema"] == "v1"

    def test_needs_at_least_one_snapshot(self):
        with pytest.raises(ValidationError):
            aggregate_metrics({})


# ---------------------------------------------------------------------------
# the live 3-runner cluster
# ---------------------------------------------------------------------------

class TestClusterSweeps:
    def test_routing_affinity_and_stability(self):
        async def body():
            async with LocalCluster(3) as cluster:
                client = ClusterClient(cluster.addresses())
                first = await client.sweep_specs(GRID)
                second = await client.sweep_specs(GRID)
                return client, first, second

        client, first, second = run_async(body())
        assert all(r["report"] is not None for r in first + second)
        # Acceptance gate: every cell reaches its ring-primary runner.
        assert client.stats.affinity() >= 0.95
        assert client.stats.affinity() == 1.0
        assert client.stats.reroutes == 0
        # The same cell lands on the same runner, sweep after sweep.
        assert [r["runner"] for r in first] == [r["runner"] for r in second]
        # Warm pass answers from the shared store.
        assert {r["source"] for r in second} == {"store"}

    def test_placement_agrees_across_client_instances(self):
        addresses = [RunnerAddress(name=f"runner-{i}", port=9000 + i)
                     for i in range(3)]
        a, b = ClusterClient(addresses), ClusterClient(addresses)
        for spec in GRID.expand():
            key = spec_route_key(spec)
            assert a.ring.route(key) == b.ring.route(key)

    def test_cluster_matches_single_runner_bit_for_bit(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def single():
            service = AsyncSweepService(
                store=store_dir,
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                ticket = await service.submit_specs(GRID)
                return await ticket.results()

        single_results = run_async(single())
        expected = [(r.key, report_to_payload(r.report, r.key))
                    for r in single_results]

        clear_caches()
        set_solution_store(None)

        async def clustered():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses())
                return await client.sweep_specs(GRID)

        cluster_results = run_async(clustered())
        # Warm store: every cell is a store hit, and the payloads are the
        # exact bytes the single-runner sweep persisted.
        assert {r["source"] for r in cluster_results} == {"store"}
        got = [(r["key"], r["report"]) for r in cluster_results]
        assert json.dumps(got, sort_keys=True) == \
               json.dumps(expected, sort_keys=True)

    def test_kill_mid_sweep_reroutes_with_store_recovery(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def body():
            async with LocalCluster(3, store_root=store_dir,
                                    workers=1) as cluster:
                client = ClusterClient(cluster.addresses(),
                                       request_timeout=60.0)
                specs = list(GRID.expand())
                victim = client.ring.route(spec_route_key(specs[0]))
                sweep = asyncio.ensure_future(client.sweep_specs(specs))
                # Kill the victim while it is actually solving its cells.
                await wait_until(lambda: cluster.servers[victim]
                                 .service.inflight_count() > 0)
                cluster.kill(victim)
                results = await sweep
                return client, victim, results

        client, victim, results = run_async(body())
        assert len(results) == GRID.size()
        assert all(r["report"] is not None for r in results)
        assert client.stats.runner_errors == 1
        assert client.stats.reroutes >= 1
        assert victim not in client.healthy
        # The victim's unanswered cells were re-routed deterministically,
        # and everything the dead runner persisted before dying backs the
        # recovery: the shared store ends up with every cell.
        from repro.engine.store import SolutionStore
        view = SolutionStore(store_dir)
        for r in results:
            assert view.get_report(r["key"]) is not None

    def test_dead_runner_at_submit_time_fails_over(self):
        async def body():
            async with LocalCluster(3) as cluster:
                client = ClusterClient(cluster.addresses(),
                                       request_timeout=30.0)
                warm = await client.sweep_specs(GRID)
                victim = warm[0]["runner"]
                cluster.kill(victim)
                again = await client.sweep_specs(GRID)
                return client, victim, warm, again

        client, victim, warm, again = run_async(body())
        assert [r["key"] for r in warm] == [r["key"] for r in again]
        assert victim not in {r["runner"] for r in again}
        assert client.stats.reroutes > 0
        # Store-backed recovery: nothing is recomputed, the failover
        # runners answer the dead runner's cells from the shared store.
        assert {r["source"] for r in again} == {"store"}

    def test_exhausting_every_runner_raises(self):
        async def body():
            async with LocalCluster(2) as cluster:
                client = ClusterClient(cluster.addresses(),
                                       request_timeout=10.0)
                await client.sweep_specs(GRID)
                for name in cluster.runner_names:
                    cluster.kill(name)
                await client.sweep_specs(GRID)

        with pytest.raises(ValidationError, match="exhausted|healthy"):
            run_async(body())

    def test_concurrent_writers_store_integrity(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def body():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses())
                specs = list(GRID.expand())
                # Three concurrent sweeps over overlapping cell sets: every
                # runner writes into the shared root at the same time.
                batches = [specs, specs[::-1], specs[::2] + specs[1::2]]
                results = await asyncio.gather(
                    *[client.sweep_specs(batch) for batch in batches])
                metrics = await client.metrics()
                return results, metrics

        results, metrics = run_async(body())
        for batch in results:
            assert all(r["report"] is not None for r in batch)
        # Zero corruption, zero lock-timeout recomputes across all runners.
        store_counters = metrics["store"]
        assert store_counters["lock_timeouts"] == 0
        assert store_counters["corrupt_shards"] == 0
        assert store_counters["lock_acquires"] > 0
        from repro.engine.store import SolutionStore
        view = SolutionStore(store_dir)
        keys = {r["key"] for batch in results for r in batch}
        assert len(keys) == GRID.size()
        for key in keys:
            assert view.get_report(key) is not None

    def test_health_check_updates_membership(self):
        async def body():
            async with LocalCluster(3) as cluster:
                client = ClusterClient(cluster.addresses(),
                                       request_timeout=10.0)
                healthy = await client.check_health()
                victim = cluster.runner_names[0]
                cluster.kill(victim)
                after = await client.check_health()
                return healthy, after, client.healthy

        healthy, after, remaining = run_async(body())
        assert all(healthy.values())
        assert not after["runner-0"]
        assert after["runner-1"] and after["runner-2"]
        assert remaining == ["runner-1", "runner-2"]


class TestClusterMetrics:
    def test_aggregated_metrics_sum_per_runner_work(self):
        async def body():
            async with LocalCluster(3) as cluster:
                client = ClusterClient(cluster.addresses())
                await client.sweep_specs(GRID)
                return await client.metrics()

        metrics = run_async(body())
        per_runner = metrics["runners"]
        assert sorted(per_runner) == ["runner-0", "runner-1", "runner-2"]
        for name, snap in per_runner.items():
            assert snap["runner"] == name
        total = sum(snap["service"]["requests"]
                    for snap in per_runner.values())
        assert metrics["service"]["requests"] == total == GRID.size()
        router = metrics["router"]
        assert router["affinity"] == 1.0
        assert router["healthy_runners"] == 3


class TestRouterServer:
    def test_single_server_clients_work_through_the_router(self, tmp_path):
        sock = str(tmp_path / "router.sock")

        async def body():
            async with LocalCluster(3) as cluster:
                client = ClusterClient(cluster.addresses())
                direct = await client.sweep_specs(GRID)
                async with RouterServer(client, unix_socket=sock):
                    routed = await request_sweep_spec(GRID, unix_socket=sock)
                    metrics = await request_metrics(unix_socket=sock)
                return direct, routed, metrics

        direct, routed, metrics = run_async(body())
        assert [r["key"] for r in routed] == [r["key"] for r in direct]
        assert {r["source"] for r in routed} == {"store"}  # warm second pass
        assert metrics["router"]["healthy_runners"] == 3
        assert metrics["service"]["requests"] == 2 * GRID.size()

    def test_router_protocol_errors_and_stats(self, tmp_path):
        sock = str(tmp_path / "router.sock")

        async def talk(payload: bytes):
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(payload)
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        async def body():
            async with LocalCluster(2) as cluster:
                client = ClusterClient(cluster.addresses())
                async with RouterServer(client, unix_socket=sock):
                    bad = await talk(b"this is not json\n")
                    unknown = await talk(json.dumps(
                        {"op": "nope", "id": "x"}).encode() + b"\n")
                    pong = await talk(json.dumps(
                        {"op": "ping", "id": "p"}).encode() + b"\n")
                    stats = await talk(json.dumps(
                        {"op": "stats", "id": "s"}).encode() + b"\n")
                return bad, unknown, pong, stats

        bad, unknown, pong, stats = run_async(body())
        assert bad["id"] is None and "bad request line" in bad["error"]
        assert "unknown op" in unknown["error"]
        assert pong["pong"] is True and pong["router"] is True
        assert stats["stats"]["healthy_runners"] == 2
        assert stats["stats"]["runners"] == {"runner-0": True,
                                             "runner-1": True}


class TestClusterLoadgen:
    def test_cluster_load_run_reconciles(self):
        from repro.loadgen import build_schedule, run_load

        async def body():
            schedule = build_schedule("poisson", rate=300.0, count=36,
                                      num_cells=GRID.size(), skew=1.2,
                                      seed=3)
            async with LocalCluster(3) as cluster:
                return await run_load(schedule, GRID,
                                      cluster=cluster.addresses(),
                                      time_scale=0.0)

        report = run_async(body())
        assert report.reconcile() == []
        assert report.counts["ok"] == 36
        # Ring routing means each unique cell is solved exactly once
        # cluster-wide: the aggregated dedup matches a single runner's.
        assert report.cells_solved == report.schedule["unique_cells"]
