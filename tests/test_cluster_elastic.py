"""Tests for elastic cluster resizing (live join/leave with prewarming).

The ring layer is pinned twice: incremental splicing must be
entry-for-entry identical to a full rebuild, and :func:`moved_keys` must
agree with brute-force per-key route comparison.  The store's
``scan_routed`` and the ``warm_cache`` wire op are tested over a real
populated store.  The integration classes then run live
:class:`~repro.cluster.runners.LocalCluster` resizes: a 3-to-4 join must
move at most its fair share of cells and prewarm the joiner
(``prewarm_hits`` with **zero** recomputes afterwards), a graceful leave
mid-deployment must stay bit-identical to the static run, and the chaos
scenario (join + graceful leave + hard kill under loadgen traffic) must
come through with every request answered and every cell solved exactly
once cluster-wide.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.cluster import (
    ClusterClient,
    HashRing,
    LocalCluster,
    MovedRange,
    RouterServer,
    RunnerAddress,
    moved_keys,
)
from repro.cluster.ring import RING_POSITIONS, _position, moved_key_subset
from repro.cluster.router import spec_route_key
from repro.engine import Portfolio, clear_caches, set_solution_store
from repro.engine.async_service import AsyncSweepService
from repro.engine.store import SolutionStore, report_to_payload
from repro.loadgen.arrivals import Arrival, ArrivalSchedule
from repro.loadgen.client import LoadClient
from repro.scenarios import Axis, ScenarioGrid
from repro.serve import request_warm_cache
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def run_async(coro, timeout: float = 120.0):
    async def _bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(_bounded())


GRID = ScenarioGrid(
    generators=({"generator": "fork-join",
                 "params": {"width": Axis([2, 3, 4]),
                            "work": Axis([4, 6])}},),
    budget_rules=(("makespan-factor", 0.5), ("makespan-factor", 0.75)),
)  # 12 cells

KEYS = [f"key-{i:04d}" for i in range(2000)]


# ---------------------------------------------------------------------------
# incremental ring mutation == full rebuild
# ---------------------------------------------------------------------------

class TestIncrementalRing:
    def _entries(self, ring: HashRing):
        return list(zip(ring._positions, ring._owners))

    def _rebuilt(self, nodes) -> HashRing:
        """The reference construction: everything sorted at once."""
        ring = HashRing(nodes)
        ring._rebuild()
        return ring

    def test_splice_in_matches_rebuild(self):
        ring = HashRing(["r0", "r1", "r2"])
        ring.add("r3")
        assert self._entries(ring) == \
               self._entries(self._rebuilt(["r0", "r1", "r2", "r3"]))

    def test_splice_out_matches_rebuild(self):
        ring = HashRing(["r0", "r1", "r2", "r3"])
        ring.remove("r1")
        assert self._entries(ring) == \
               self._entries(self._rebuilt(["r0", "r2", "r3"]))

    def test_mutation_chain_matches_rebuild(self):
        ring = HashRing(["r0", "r1"])
        for step in ("add r2", "add r3", "remove r0", "add r4", "remove r2"):
            op, node = step.split()
            getattr(ring, op)(node)
        assert self._entries(ring) == \
               self._entries(self._rebuilt(["r1", "r3", "r4"]))
        assert sorted(ring.nodes) == ["r1", "r3", "r4"]

    def test_version_counts_membership_changes(self):
        ring = HashRing(["r0", "r1"])
        assert ring.version == 0       # construction is epoch zero
        ring.add("r2")
        ring.add("r2")                 # idempotent: no change, no bump
        ring.remove("r1")
        ring.remove("r1")
        assert ring.version == 2

    def test_copy_is_an_independent_snapshot(self):
        ring = HashRing(["r0", "r1", "r2"])
        snap = ring.copy()
        ring.add("r3")
        assert "r3" in ring and "r3" not in snap
        assert snap.version == 0 and ring.version == 1
        assert [snap.route(k) for k in KEYS[:200]] == \
               [HashRing(["r0", "r1", "r2"]).route(k) for k in KEYS[:200]]

    def test_payload_roundtrip_preserves_placement_and_version(self):
        ring = HashRing(["r0", "r1", "r2"], vnodes=32)
        ring.add("r3")
        clone = HashRing.from_payload(
            json.loads(json.dumps(ring.to_payload())))
        assert clone.version == ring.version
        assert [clone.route(k) for k in KEYS[:200]] == \
               [ring.route(k) for k in KEYS[:200]]


# ---------------------------------------------------------------------------
# moved_keys: the resize diff
# ---------------------------------------------------------------------------

class TestMovedKeys:
    def _assert_exact(self, old: HashRing, new: HashRing):
        """moved_keys must agree with per-key route comparison exactly."""
        ranges = moved_keys(old, new)
        moved = set(moved_key_subset(ranges, KEYS))
        for key in KEYS:
            changed = old.route(key) != new.route(key)
            assert changed == (key in moved), key
            assert changed == any(r.contains(key) for r in ranges), key

    def test_join_diff_is_exact(self):
        old = HashRing(["r0", "r1", "r2"])
        new = old.copy()
        new.add("r3")
        self._assert_exact(old, new)
        # Every moved range is acquired by the joiner.
        assert {r.new_owner for r in moved_keys(old, new)} == {"r3"}

    def test_leave_diff_is_exact(self):
        old = HashRing(["r0", "r1", "r2", "r3"])
        new = old.copy()
        new.remove("r1")
        self._assert_exact(old, new)
        assert {r.old_owner for r in moved_keys(old, new)} == {"r1"}

    def test_join_moves_at_most_the_fair_share(self):
        """Acceptance gate: a 3->4 join moves <= 1/4 of keys + vnode slack."""
        old = HashRing(["r0", "r1", "r2"])
        new = old.copy()
        new.add("r3")
        ranges = moved_keys(old, new)
        moved_span = sum(r.span() for r in ranges)
        # The moved fraction of the position space is within a few percent
        # of the ideal 1/n share (vnode placement variance).
        assert moved_span / RING_POSITIONS <= 0.25 + 0.05
        moved = moved_key_subset(ranges, KEYS)
        slack = math.ceil(len(KEYS) * 0.05)
        assert len(moved) <= math.ceil(len(KEYS) / 4) + slack

    def test_identical_rings_move_nothing(self):
        ring = HashRing(["r0", "r1"])
        assert moved_keys(ring, ring.copy()) == []

    def test_moved_range_membership_helpers(self):
        position = _position("some-key")
        covering = MovedRange(position, position, "a", "b")
        assert covering.contains("some-key")
        assert covering.span() == 1
        assert not MovedRange(position + 1, position + 9, "a", "b") \
            .contains("some-key")
        assert moved_key_subset([], KEYS) == []


# ---------------------------------------------------------------------------
# scan_routed: the prewarm feeder
# ---------------------------------------------------------------------------

class TestScanRouted:
    def _populate(self, store_dir: str):
        async def body():
            service = AsyncSweepService(
                store=store_dir,
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                ticket = await service.submit_specs(GRID)
                await ticket.results()

        run_async(body())
        clear_caches()
        set_solution_store(None)

    def test_partitions_the_store_exactly(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        view = SolutionStore(store_dir)
        everything = dict(view.scan(include_aliases=True))
        assert len(everything) == 2 * GRID.size()  # reports + aliases
        ring = HashRing(["r0", "r1", "r2"])
        seen = {}
        for owner in ring.nodes:
            for key, payload in view.scan_routed(ring, owner):
                assert key not in seen, "owners overlapped"
                seen[key] = payload
        assert seen == everything
        assert view.routed_scans == 3
        assert view.routed_entries == len(everything)
        assert view.routed_skips == 2 * len(everything)

    def test_aliases_co_locate_with_their_reports(self, tmp_path):
        """An alias routes by its *target* fingerprint, so every alias an
        owner receives arrives together with the report it points at --
        the pair a prewarmed joiner needs to answer spec traffic."""
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        view = SolutionStore(store_dir)
        ring = HashRing(["r0", "r1", "r2"])
        for owner in ring.nodes:
            entries = dict(view.scan_routed(ring, owner))
            targets = {p["alias_of"] for p in entries.values()
                       if set(p) == {"alias_of"}}
            for target in targets:
                assert target in entries
                assert ring.route(target) == owner

    def test_exclude_aliases(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        view = SolutionStore(store_dir)
        ring = HashRing(["r0", "r1", "r2"])
        total = 0
        for owner in ring.nodes:
            for _, payload in view.scan_routed(ring, owner,
                                               include_aliases=False):
                assert set(payload) != {"alias_of"}
                total += 1
        assert total == GRID.size()


# ---------------------------------------------------------------------------
# the warm_cache wire op
# ---------------------------------------------------------------------------

class TestWarmCacheOp:
    def test_warms_exactly_the_owned_range(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def populate():
            service = AsyncSweepService(
                store=store_dir,
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                await (await service.submit_specs(GRID)).results()

        run_async(populate())
        clear_caches()
        set_solution_store(None)

        ring = HashRing(["r0", "r1", "r2"])
        view = SolutionStore(store_dir)
        owned = [key for key, payload in view.scan_routed(ring, "r1")
                 if set(payload) != {"alias_of"}]

        async def body():
            async with LocalCluster(1, store_root=store_dir) as cluster:
                address = cluster.addresses()[0]
                reply = await request_warm_cache(
                    unix_socket=address.unix_socket,
                    ring=ring.to_payload(), owner="r1")
                metrics = cluster.servers["runner-0"].service.snapshot()
                return reply, metrics

        reply, metrics = run_async(body())
        assert reply["warmed"] == len(owned) > 0
        assert reply["aliases"] > 0
        assert metrics["service"]["prewarmed"] == len(owned)

    def test_bad_requests_are_structured_errors(self, tmp_path):
        async def body():
            async with LocalCluster(1) as cluster:
                address = cluster.addresses()[0]
                with pytest.raises(ValidationError, match="owner"):
                    await request_warm_cache(
                        unix_socket=address.unix_socket,
                        ring=HashRing(["r0"]).to_payload(), owner=None)
                with pytest.raises(ValidationError, match="nodes"):
                    await request_warm_cache(
                        unix_socket=address.unix_socket,
                        ring={"nodes": "nope"}, owner="r0")
                # No store configured: warming is a harmless no-op.
                reply = await request_warm_cache(
                    unix_socket=address.unix_socket)
                return reply

        reply = run_async(body())
        assert reply == {"id": "warm-1", "warmed": 0, "aliases": 0,
                         "runner": "runner-0"}


# ---------------------------------------------------------------------------
# live elastic resizes
# ---------------------------------------------------------------------------

class TestElasticLifecycle:
    def test_join_prewarms_and_moves_minimally(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def body():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses())
                before = await client.sweep_specs(GRID)
                # Cold the (process-shared) tier-1 LRU so the joiner's
                # prewarm actually installs entries, as it would in a
                # fresh multi-host process.
                clear_caches()
                address = await cluster.start_runner("runner-3")
                outcome = await client.add_runner(address)
                after = await client.sweep_specs(GRID)
                return client, before, outcome, after

        client, before, outcome, after = run_async(body())
        # Minimal movement: a 3->4 join moves at most the fair quarter of
        # the last sweep's cells, plus vnode-placement slack.
        assert outcome["action"] == "add"
        assert outcome["ring_version"] == 1
        assert 1 <= outcome["cells_moved"] <= math.ceil(GRID.size() / 4) + 2
        # The joiner's key range was bulk-loaded before it took traffic.
        assert outcome["warmed"] > 0
        assert outcome["aliases"] > 0
        assert "warm_error" not in outcome
        # Warm handoff: the post-join sweep recomputes nothing -- every
        # cell answers from prewarmed memory or the shared store -- and
        # the results are bit-identical.
        assert [r["key"] for r in after] == [r["key"] for r in before]
        assert json.dumps([r["report"] for r in after], sort_keys=True) == \
               json.dumps([r["report"] for r in before], sort_keys=True)
        assert {r["source"] for r in after} <= {"store", "memory"}
        assert client.stats.prewarm_hits > 0
        assert client.stats.affinity() == 1.0
        assert client.stats.ring_version == 1
        # The joiner serves its acquired share.
        assert "runner-3" in {r["runner"] for r in after}

    def test_join_then_leave_round_trips_placement(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def body():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses())
                before = await client.sweep_specs(GRID)
                address = await cluster.start_runner("runner-3")
                await client.add_runner(address, prewarm=False)
                outcome = client.remove_runner("runner-3")
                await cluster.stop_runner("runner-3")
                after = await client.sweep_specs(GRID)
                return client, before, outcome, after

        client, before, outcome, after = run_async(body())
        assert outcome["ring_version"] == 2
        # add then remove is a placement no-op: same runner per cell.
        assert [(r["runner"], r["key"]) for r in after] == \
               [(r["runner"], r["key"]) for r in before]
        assert client.stats.reroutes == 0

    def test_graceful_leave_mid_deployment_is_bit_identical(self, tmp_path):
        """A planned leave must not change a single byte of any report."""
        store_dir = str(tmp_path / "store")

        async def static():
            service = AsyncSweepService(
                store=store_dir,
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                return await (await service.submit_specs(GRID)).results()

        expected = [(r.key, report_to_payload(r.report, r.key))
                    for r in run_async(static())]
        clear_caches()
        set_solution_store(None)

        async def elastic():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses())
                await client.sweep_specs(GRID)
                outcome = client.remove_runner("runner-1")
                await cluster.stop_runner("runner-1", graceful=True)
                final = await client.sweep_specs(GRID)
                return client, outcome, final

        client, outcome, final = run_async(elastic())
        assert outcome["action"] == "remove"
        assert outcome["ring_version"] == 1
        assert "runner-1" not in {r["runner"] for r in final}
        assert client.stats.reroutes == 0  # planned, not failover
        got = [(r["key"], r["report"]) for r in final]
        assert json.dumps(got, sort_keys=True) == \
               json.dumps(expected, sort_keys=True)

    def test_remove_guards(self):
        async def body():
            async with LocalCluster(1) as cluster:
                client = ClusterClient(cluster.addresses())
                with pytest.raises(ValidationError, match="unknown"):
                    client.remove_runner("nope")
                with pytest.raises(ValidationError, match="last"):
                    client.remove_runner("runner-0")
                address = cluster.addresses()[0]
                with pytest.raises(ValidationError, match="registered"):
                    await client.add_runner(address)

        run_async(body())

    def test_tcp_transport_runs_the_same_protocol(self, tmp_path):
        """The multi-host shape: everything above over TCP sockets."""
        store_dir = str(tmp_path / "store")

        async def body():
            async with LocalCluster(2, store_root=store_dir,
                                    transport="tcp") as cluster:
                client = ClusterClient(cluster.addresses())
                before = await client.sweep_specs(GRID)
                clear_caches()
                address = await cluster.start_runner("runner-2")
                assert address.port is not None
                outcome = await client.add_runner(address)
                after = await client.sweep_specs(GRID)
                return client, before, outcome, after

        client, before, outcome, after = run_async(body())
        assert outcome["warmed"] > 0
        assert [r["report"] for r in after] == [r["report"] for r in before]
        assert {r["source"] for r in after} <= {"store", "memory"}
        assert client.stats.affinity() == 1.0


class TestRouterResizeOp:
    def test_resize_over_the_wire(self, tmp_path):
        sock = str(tmp_path / "router.sock")
        store_dir = str(tmp_path / "store")

        async def talk(payload):
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        async def body():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses())
                await client.sweep_specs(GRID)
                clear_caches()
                async with RouterServer(client, unix_socket=sock):
                    ring_before = await talk({"op": "ring", "id": "g0"})
                    address = await cluster.start_runner("runner-3")
                    joined = await talk(
                        {"op": "resize", "id": "r1", "action": "add",
                         "runner": {"name": address.name,
                                    "unix_socket": address.unix_socket}})
                    left = await talk(
                        {"op": "resize", "id": "r2", "action": "remove",
                         "runner": "runner-0"})
                    await cluster.stop_runner("runner-0")
                    ring_after = await talk({"op": "ring", "id": "g1"})
                    bad = await talk({"op": "resize", "id": "r3",
                                      "action": "shrinkify"})
                return ring_before, joined, left, ring_after, bad

        ring_before, joined, left, ring_after, bad = run_async(body())
        assert ring_before["ring"]["version"] == 0
        assert sorted(ring_before["ring"]["nodes"]) == \
               ["runner-0", "runner-1", "runner-2"]
        assert joined["action"] == "add" and joined["ring_version"] == 1
        assert joined["warmed"] > 0
        assert left["action"] == "remove" and left["ring_version"] == 2
        assert sorted(ring_after["ring"]["nodes"]) == \
               ["runner-1", "runner-2", "runner-3"]
        assert sorted(ring_after["healthy"]) == \
               ["runner-1", "runner-2", "runner-3"]
        assert "error" in bad and "action" in bad["error"]


# ---------------------------------------------------------------------------
# chaos: resize under live loadgen traffic
# ---------------------------------------------------------------------------

def _wave_schedule(cells: int, waves: int, gap: float = 0.0
                   ) -> ArrivalSchedule:
    """``waves`` full passes over every cell, wave *w* starting at
    ``w * gap`` seconds (0.0 collapses them into one burst)."""
    arrivals = tuple(Arrival(time=w * gap, cell=c)
                     for w in range(waves) for c in range(cells))
    return ArrivalSchedule(process="waves", seed=0, rate=0.0, skew=0.0,
                           num_cells=cells, arrivals=arrivals)


class TestElasticUnderLoad:
    def test_chaos_resize_between_waves(self, tmp_path):
        """Join + graceful leave + hard kill under loadgen traffic.

        Wave 1 replays every cell against the static 3-runner cluster;
        between waves the topology churns (runner-3 joins with an
        explicit prewarm, runner-0 leaves gracefully, runner-1 is
        SIGKILLed after being routed away from); wave 2 replays every
        cell against the survivors.  Every request must succeed, the
        reports must be bit-identical to a static single-runner run, and
        no cell may be computed more than once cluster-wide.
        """
        store_dir = str(tmp_path / "store")

        async def static():
            # The baseline solves into its *own* store: the elastic run
            # below must do (exactly) its own computing.
            service = AsyncSweepService(
                store=str(tmp_path / "baseline"),
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                return await (await service.submit_specs(GRID)).results()

        baseline = {r.key: report_to_payload(r.report, r.key)
                    for r in run_async(static())}
        clear_caches()
        set_solution_store(None)
        specs = list(GRID.expand())

        async def chaotic():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = LoadClient(cluster=cluster.addresses(),
                                    time_scale=0.0)
                wave1 = await client.run(
                    _wave_schedule(len(specs), waves=1), specs)
                snap1 = {
                    name: cluster.servers[name].service.snapshot()["service"]
                    for name in cluster.runner_names}
                # -- the churn ------------------------------------------
                clear_caches()  # cold LRU: the joiner prewarms for real
                address = await cluster.start_runner("runner-3")
                warm = await request_warm_cache(
                    unix_socket=address.unix_socket,
                    ring=HashRing([*cluster.runner_names]).to_payload(),
                    owner="runner-3")
                await client.add_runner(address)
                client.remove_runner("runner-0")
                await cluster.stop_runner("runner-0", graceful=True)
                client.remove_runner("runner-1")
                await cluster.stop_runner("runner-1", graceful=False)
                # -- the survivors take wave 2 --------------------------
                wave2 = await client.run(
                    _wave_schedule(len(specs), waves=2), specs)
                snap2 = {
                    name: cluster.servers[name].service.snapshot()["service"]
                    for name in cluster.runner_names}
                return wave1, snap1, warm, wave2, snap2

        wave1, snap1, warm, wave2, snap2 = run_async(chaotic())
        outcomes = wave1 + wave2
        assert all(o.ok for o in outcomes)
        assert not any(o.rejected for o in outcomes)
        assert warm["warmed"] > 0
        # Zero duplicate compute across the whole churny run: wave 1
        # solved each cell exactly once, everything after is a cache or
        # store answer on whichever runner currently owns the cell.
        assert sum(s["computed"] for s in snap1.values()) == len(specs)
        assert snap2["runner-2"]["computed"] == snap1["runner-2"]["computed"]
        assert snap2["runner-3"]["computed"] == 0
        assert all(o.source in ("store", "memory") for o in wave2)
        # The joiner answered moved cells straight from prewarmed memory.
        assert snap2["runner-3"]["prewarm_hits"] > 0
        # Bit-identical to the static single-runner baseline: the churny
        # cluster persisted byte-for-byte the same report payloads.
        assert {o.key for o in outcomes} == set(baseline)
        view = SolutionStore(store_dir)

        def solved(payload):
            # Everything but the measured wall clock must match exactly.
            return {k: v for k, v in payload.items() if k != "wall_time"}

        for key, expected_payload in baseline.items():
            report = view.get_report(key)
            assert report is not None
            assert solved(report_to_payload(report, key)) == \
                   solved(expected_payload)

    def test_mid_replay_membership_change(self, tmp_path):
        """add_runner/remove_runner while a replay is in flight.

        Wave 1 fires at t=0 on three runners; the membership change runs
        while the replay is live (a joiner enters the client ring, a
        leaver is routed away from); wave 2 fires afterwards and routes
        on the resized ring.  The retired runner's in-flight requests
        finish on their parked connection, so every outcome is ok.
        """
        store_dir = str(tmp_path / "store")
        specs = list(GRID.expand())

        async def body():
            async with LocalCluster(3, store_root=store_dir) as cluster:
                client = LoadClient(cluster=cluster.addresses(),
                                    time_scale=1.0, request_timeout=90.0)
                schedule = _wave_schedule(len(specs), waves=2, gap=2.0)
                replay = asyncio.ensure_future(client.run(schedule, specs))
                # Resize while wave 1 is (or may still be) in flight.
                await asyncio.sleep(0.3)
                address = await cluster.start_runner("runner-3")
                await client.add_runner(address)
                client.remove_runner("runner-0")
                outcomes = await replay
                snapshots = {
                    name: cluster.servers[name].service.snapshot()["service"]
                    for name in ("runner-0", "runner-3")}
                # The leaver only drains after the replay completes.
                await cluster.stop_runner("runner-0", graceful=True)
                return outcomes, snapshots

        outcomes, snapshots = run_async(body())
        assert len(outcomes) == 2 * len(specs)
        assert all(o.ok for o in outcomes)
        # Post-resize traffic routes on the new ring: the joiner served
        # its share of wave 2, the leaver saw nothing past wave 1 (its
        # deterministic share of the original ring is 4 of 12 cells).
        assert snapshots["runner-3"]["requests"] >= 1
        assert snapshots["runner-0"]["requests"] <= 4

    def test_membership_guards(self):
        client = LoadClient(cluster=[RunnerAddress(name="a", port=1),
                                     RunnerAddress(name="b", port=2)])
        single = LoadClient(port=1)

        async def body():
            with pytest.raises(ValidationError, match="cluster"):
                await single.add_runner(RunnerAddress(name="c", port=3))
            with pytest.raises(ValidationError, match="already"):
                await client.add_runner(RunnerAddress(name="a", port=9))
            with pytest.raises(ValidationError, match="unknown"):
                client.remove_runner("zzz")
            client.remove_runner("a")
            with pytest.raises(ValidationError, match="last"):
                client.remove_runner("b")

        run_async(body())
