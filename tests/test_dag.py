"""Tests for the activity-on-node TradeoffDAG."""

from __future__ import annotations

import pytest

from repro.core.dag import TradeoffDAG
from repro.core.duration import GeneralStepDuration
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_add_job_and_edges(self, simple_chain_dag):
        dag = simple_chain_dag
        assert dag.num_jobs == 4
        assert dag.num_edges == 3
        assert dag.source == "s"
        assert dag.sink == "t"
        assert dag.successors("x") == ["y"]
        assert dag.predecessors("y") == ["x"]
        assert dag.in_degree("y") == 1
        assert dag.out_degree("s") == 1

    def test_unknown_job_edge_rejected(self):
        dag = TradeoffDAG()
        dag.add_job("a")
        with pytest.raises(ValidationError):
            dag.add_edge("a", "b")

    def test_self_loop_rejected(self):
        dag = TradeoffDAG()
        dag.add_job("a")
        with pytest.raises(ValidationError):
            dag.add_edge("a", "a")

    def test_duplicate_edges_ignored(self):
        dag = TradeoffDAG()
        dag.add_job("a")
        dag.add_job("b")
        dag.add_edge("a", "b")
        dag.add_edge("a", "b")
        assert dag.num_edges == 1

    def test_cycle_detected(self):
        dag = TradeoffDAG()
        for name in "abc":
            dag.add_job(name)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        dag.add_edge("c", "a")
        with pytest.raises(ValueError):
            dag.topological_order()

    def test_remove_edge(self):
        dag = TradeoffDAG()
        dag.add_job("a")
        dag.add_job("b")
        dag.add_edge("a", "b")
        dag.remove_edge("a", "b")
        assert dag.num_edges == 0

    def test_copy_is_independent(self, simple_chain_dag):
        copy = simple_chain_dag.copy()
        copy.add_job("extra")
        assert "extra" not in simple_chain_dag.jobs

    def test_ensure_single_source_sink(self):
        dag = TradeoffDAG()
        for name in ["a", "b", "c", "d"]:
            dag.add_job(name, GeneralStepDuration([(0, 1)]))
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        fixed = dag.ensure_single_source_sink()
        assert fixed.source == TradeoffDAG.VIRTUAL_SOURCE
        assert fixed.sink == TradeoffDAG.VIRTUAL_SINK
        assert fixed is not dag
        # already-unique terminals return the same object
        assert fixed.ensure_single_source_sink() is fixed

    def test_networkx_roundtrip(self, simple_chain_dag):
        g = simple_chain_dag.to_networkx()
        back = TradeoffDAG.from_networkx(g)
        assert sorted(map(str, back.jobs)) == sorted(map(str, simple_chain_dag.jobs))
        assert back.num_edges == simple_chain_dag.num_edges


class TestMakespan:
    def test_no_resource_makespan_is_sum_on_chain(self, simple_chain_dag):
        assert simple_chain_dag.makespan_value({}) == 64 + 36

    def test_resources_shrink_makespan(self, simple_chain_dag):
        no_res = simple_chain_dag.makespan_value({})
        with_res = simple_chain_dag.makespan_value({"x": 8, "y": 6})
        assert with_res < no_res

    def test_makespan_result_fields(self, simple_chain_dag):
        result = simple_chain_dag.makespan({"x": 8})
        assert result.makespan == result.completion_times["t"]
        assert result.critical_path[0] == "s"
        assert result.critical_path[-1] == "t"

    def test_parallel_branches_take_max(self, diamond_dag):
        value = diamond_dag.makespan_value({})
        left = 32 + 25
        right = 48 + 16
        assert value == max(left, right)

    def test_unknown_job_in_allocation_rejected(self, simple_chain_dag):
        with pytest.raises(ValidationError):
            simple_chain_dag.makespan({"nope": 3})

    def test_negative_allocation_rejected(self, simple_chain_dag):
        with pytest.raises(ValidationError):
            simple_chain_dag.makespan({"x": -1})

    def test_empty_dag(self):
        dag = TradeoffDAG()
        assert dag.makespan({}).makespan == 0.0

    def test_figure4_style_makespan(self, figure4_like_dag):
        """Works equal to in-degree; the makespan is the heaviest path."""
        result = figure4_like_dag.makespan({})
        assert result.makespan == pytest.approx(1 + 2 + 3 + 2 + 1)  # a,b,c,d,t works
        assert result.critical_path == ("s", "a", "b", "c", "d", "t")

    def test_critical_path_changes_with_allocation(self, diamond_dag):
        base = diamond_dag.makespan({})
        assert "b1" in base.critical_path
        shifted = diamond_dag.makespan({"b1": 16, "b2": 4})
        assert shifted.makespan <= base.makespan
