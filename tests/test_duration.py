"""Tests for the duration functions of Section 2 (Equations 1-3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.duration import (
    ConstantDuration,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
    recursive_binary_height_bound,
    LOG2_LOG2_E,
)
from repro.utils.validation import ValidationError


class TestGeneralStepDuration:
    def test_basic_steps(self):
        f = GeneralStepDuration([(0, 10), (2, 4), (5, 1)])
        assert f(0) == 10
        assert f(1) == 10
        assert f(2) == 4
        assert f(4.9) == 4
        assert f(5) == 1
        assert f(1000) == 1

    def test_requires_zero_breakpoint(self):
        with pytest.raises(ValidationError):
            GeneralStepDuration([(1, 5)])

    def test_redundant_breakpoints_dropped(self):
        f = GeneralStepDuration([(0, 10), (1, 10), (2, 8), (3, 8), (4, 2)])
        assert f.tuples() == [(0, 10), (2, 8), (4, 2)]

    def test_negative_resource_rejected(self):
        with pytest.raises(ValidationError):
            GeneralStepDuration([(0, 5), (-1, 2)])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            GeneralStepDuration([(0, -3)])

    def test_infinite_duration_allowed(self):
        f = GeneralStepDuration([(0, math.inf), (3, 1)])
        assert math.isinf(f(0))
        assert f(3) == 1

    def test_equality_and_hash(self):
        a = GeneralStepDuration([(0, 10), (2, 4)])
        b = GeneralStepDuration([(0, 10), (1, 10), (2, 4)])
        assert a == b
        assert hash(a) == hash(b)

    def test_helpers(self):
        f = GeneralStepDuration([(0, 10), (2, 4), (5, 1)])
        assert f.base_duration == 10
        assert f.min_duration() == 1
        assert f.max_useful_resource() == 5
        assert f.num_tuples() == 3
        assert f.resource_levels() == [0, 2, 5]

    def test_rejects_negative_resource_query(self):
        f = GeneralStepDuration([(0, 10)])
        with pytest.raises(ValidationError):
            f(-1)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), min_size=1, max_size=8))
    def test_envelope_is_non_increasing(self, pairs):
        pairs = [(0, 50)] + pairs
        f = GeneralStepDuration(pairs)
        tuples = f.tuples()
        for (r1, t1), (r2, t2) in zip(tuples, tuples[1:]):
            assert r2 > r1
            assert t2 < t1

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_monotonicity_of_duration(self, r1, r2):
        f = GeneralStepDuration([(0, 30), (3, 20), (7, 5), (11, 0)])
        lo, hi = min(r1, r2), max(r1, r2)
        assert f(hi) <= f(lo)


class TestConstantDuration:
    def test_never_improves(self):
        f = ConstantDuration(7.0)
        assert f(0) == 7.0
        assert f(1000) == 7.0
        assert f.num_tuples() == 1
        assert f.max_useful_resource() == 0


class TestKWaySplitDuration:
    def test_equation2_values(self):
        d = 36
        f = KWaySplitDuration(d)
        assert f(0) == 36
        assert f(1) == 36
        assert f(2) == math.ceil(36 / 2) + 2
        assert f(6) == math.ceil(36 / 6) + 6  # 12, at k = sqrt(36)
        # beyond sqrt(d) nothing improves
        assert f(100) == f(6)

    def test_small_work_has_no_benefit(self):
        f = KWaySplitDuration(3)
        assert f.tuples() == [(0, 3.0)]
        assert f(100) == 3.0

    def test_zero_work(self):
        f = KWaySplitDuration(0)
        assert f(0) == 0
        assert f(5) == 0

    def test_rejects_non_integer(self):
        with pytest.raises(ValidationError):
            KWaySplitDuration(3.5)  # type: ignore[arg-type]

    @given(st.integers(0, 400), st.integers(0, 50))
    def test_non_increasing(self, work, r):
        f = KWaySplitDuration(work)
        assert f(r + 1) <= f(r)

    @given(st.integers(4, 400))
    def test_envelope_matches_equation2_at_breakpoints(self, work):
        """At every stored breakpoint the envelope equals the literal Equation 2."""
        f = KWaySplitDuration(work)
        for r, t in f.tuples():
            if r >= 2:
                assert t <= f.raw_equation2(r)
                # the envelope only deviates where equation 2 is non-monotone
                assert t == min(f.raw_equation2(k) for k in range(2, int(r) + 1))

    @given(st.integers(2, 500))
    def test_best_duration_near_two_sqrt(self, work):
        """The minimum of Equation 2 is within a small additive term of 2*sqrt(d)."""
        f = KWaySplitDuration(work)
        best = f.min_duration()
        assert best <= 2 * math.sqrt(work) + 2
        assert best >= math.floor(2 * math.sqrt(work)) - 1 or best == work


class TestRecursiveBinarySplitDuration:
    def test_equation3_values(self):
        d = 64
        f = RecursiveBinarySplitDuration(d)
        assert f(0) == 64
        assert f(1) == 64
        assert f(2) == math.ceil(64 / 2) + 2
        assert f(4) == math.ceil(64 / 4) + 3
        assert f(8) == math.ceil(64 / 8) + 4
        # between powers of two the duration is constant
        assert f(5) == f(4)
        assert f(7) == f(4)

    def test_height_bound(self):
        # k = floor(log2 d - log2 log2 e)
        assert recursive_binary_height_bound(64) == int(math.floor(6 - LOG2_LOG2_E))
        assert recursive_binary_height_bound(1) == 0
        assert recursive_binary_height_bound(0) == 0

    def test_duration_at_height(self):
        f = RecursiveBinarySplitDuration(100)
        assert f.duration_at_height(0) == 100
        assert f.duration_at_height(3) == math.ceil(100 / 8) + 4

    def test_small_work(self):
        f = RecursiveBinarySplitDuration(2)
        assert f(0) == 2
        # a reducer cannot improve a 2-update cell under Equation 3
        assert f(64) == min(t for _r, t in f.tuples())

    @given(st.integers(0, 1000), st.integers(0, 64))
    def test_non_increasing(self, work, r):
        f = RecursiveBinarySplitDuration(work)
        assert f(r + 1) <= f(r)

    @given(st.integers(2, 1000))
    def test_breakpoints_are_powers_of_two(self, work):
        f = RecursiveBinarySplitDuration(work)
        for r, _t in f.tuples()[1:]:
            assert r == 2 ** int(math.log2(r))

    @given(st.integers(4, 2000))
    def test_matches_reducer_formula(self, work):
        """Equation 3 equals the reducer closed form ceil(d/2^i) + i + 1 at breakpoints."""
        f = RecursiveBinarySplitDuration(work)
        for r, t in f.tuples()[1:]:
            i = int(math.log2(r))
            assert t == math.ceil(work / 2 ** i) + i + 1

    def test_validate_passes(self):
        for work in [0, 1, 2, 5, 17, 100, 1023]:
            RecursiveBinarySplitDuration(work).validate()
            KWaySplitDuration(work).validate()
