"""Property-style cross-solver consistency tests (engine-level).

On small random instances, the solver families must agree with each other
in the ways the paper proves:

* the exact optimum never exceeds any approximation's makespan, and the
  proven approximation factors hold against it;
* the series-parallel DP and exhaustive enumeration agree exactly on
  series-parallel instances (two independent exact solvers);
* ``solve(method="auto")`` returns bit-identical results to invoking the
  dispatched solver directly (dispatch adds no nondeterminism).
"""

from __future__ import annotations

import math

import pytest

from repro.core.problem import MinMakespanProblem
from repro.engine import SolveLimits, clear_caches, exact_reference, solve
from repro.generators import layered_random_dag, random_sp_tree

_TOL = 1e-9


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _small_instances():
    """Small random DAGs (one per duration family) with exact-able sizes."""
    cases = []
    for family, seeds, budget in [("general", (1, 2, 3), 5),
                                  ("binary", (4, 5), 8),
                                  ("kway", (6, 7), 8)]:
        for seed in seeds:
            dag = layered_random_dag(2, 2, family=family, seed=seed, max_base=12)
            cases.append(pytest.param(dag, float(budget), family,
                                      id=f"{family}-seed{seed}"))
    return cases


_APPROX_BOUNDS = {
    "bicriteria-lp": 2.0,       # alpha = 0.5 -> makespan <= 2 OPT
    "kway-5approx": 5.0,
    "binary-4approx": 4.0,
}


@pytest.mark.parametrize("dag,budget,family", _small_instances())
def test_exact_lower_bounds_every_approximation(dag, budget, family):
    limits = SolveLimits(max_exact_combinations=200_000)
    exact = exact_reference(dag=dag, budget=budget, limits=limits)
    assert exact is not None, "instances are sized to be exactly solvable"
    assert exact.certificate.passed and exact.certificate.feasible

    methods = ["bicriteria-lp", "greedy-path-reuse"]
    if family == "kway":
        methods.append("kway-5approx")
    if family == "binary":
        methods.append("binary-4approx")

    for method in methods:
        approx = solve(dag=dag, budget=budget, method=method)
        assert approx.certificate.passed
        # The exact optimum lower-bounds every *budget-feasible* solution.
        # Bi-criteria solvers may exceed the budget by their proven factor
        # (and can then legitimately beat OPT(B) on makespan), so the
        # ordering is asserted only when the certificate says "feasible".
        if approx.certificate.feasible:
            assert exact.makespan <= approx.makespan + _TOL, method
        bound = _APPROX_BOUNDS.get(method)
        if bound is not None and exact.makespan > 0:
            assert approx.makespan <= bound * exact.makespan + 1e-6, method
        if method == "bicriteria-lp":
            # Theorem 3.4 resource half of the (2, 2) guarantee at alpha=0.5
            assert approx.budget_used <= 2.0 * budget + 1e-6


@pytest.mark.parametrize("num_jobs,seed", [(4, 0), (5, 1), (5, 2), (6, 3)])
@pytest.mark.parametrize("budget", [0, 3, 6])
def test_sp_dp_agrees_with_enumeration_on_sp_instances(num_jobs, seed, budget):
    tree = random_sp_tree(num_jobs, family="binary", max_base=16, seed=seed)
    dag = tree.to_dag()
    limits = SolveLimits(max_exact_combinations=500_000)

    dp = solve(dag=dag, budget=float(budget), method="series-parallel-dp", limits=limits)
    enum = solve(dag=dag, budget=float(budget), method="exact-enumeration", limits=limits)

    assert dp.makespan == pytest.approx(enum.makespan, abs=1e-9)
    assert dp.certificate.passed and enum.certificate.passed
    # both are within-budget exact solvers
    assert dp.budget_used <= budget + _TOL
    assert enum.budget_used <= budget + _TOL


@pytest.mark.parametrize("num_jobs,seed,target", [(4, 0, 20.0), (5, 1, 15.0), (5, 2, 30.0)])
def test_sp_dp_agrees_with_enumeration_min_resource(num_jobs, seed, target):
    tree = random_sp_tree(num_jobs, family="binary", max_base=16, seed=seed)
    dag = tree.to_dag()
    limits = SolveLimits(max_exact_combinations=500_000)

    dp = solve(dag=dag, target_makespan=target, method="series-parallel-dp", limits=limits)
    enum = solve(dag=dag, target_makespan=target, method="exact-enumeration", limits=limits)

    if math.isinf(dp.budget_used) or math.isinf(enum.budget_used):
        assert math.isinf(dp.budget_used) and math.isinf(enum.budget_used)
        return
    assert dp.budget_used == pytest.approx(enum.budget_used, abs=1e-9)
    assert dp.makespan <= target + _TOL
    assert enum.makespan <= target + _TOL


@pytest.mark.parametrize("family,seed,budget", [
    ("general", 11, 6.0), ("binary", 12, 8.0), ("kway", 13, 8.0),
])
def test_auto_dispatch_matches_direct_invocation(family, seed, budget):
    dag = layered_random_dag(3, 3, family=family, seed=seed)
    problem = MinMakespanProblem(dag, budget)

    auto = solve(problem, method="auto")
    direct = solve(problem, method=auto.solver_id, use_cache=False)

    assert direct.solver_id == auto.solver_id
    assert direct.makespan == pytest.approx(auto.makespan, abs=1e-12)
    assert direct.budget_used == pytest.approx(auto.budget_used, abs=1e-12)
    assert direct.solution.allocation == auto.solution.allocation
