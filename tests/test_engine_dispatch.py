"""Unit tests for the engine: normalization, structure probe, registry,
auto-dispatch, caching, fingerprints and certificates."""

from __future__ import annotations

import math

import pytest

from repro.core.dag import TradeoffDAG
from repro.core.duration import (
    ConstantDuration,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
)
from repro.core.problem import MinMakespanProblem, MinResourceProblem, TradeoffSolution
from repro.engine import (
    MIN_MAKESPAN,
    SolveLimits,
    analyze_dag,
    certify_solution,
    clear_caches,
    dag_fingerprint,
    exact_reference,
    get_solver,
    normalize_problem,
    register_solver,
    solve,
    solver_ids,
    unregister_solver,
)
from repro.engine.registry import NoSolverError, candidate_solvers, select_solver
from repro.engine.structure import structure_cache_info
from repro.generators import layered_random_dag
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


# ----------------------------------------------------------------------
# normalization
# ----------------------------------------------------------------------
def test_normalize_from_keywords(simple_chain_dag):
    problem = normalize_problem(dag=simple_chain_dag, budget=4)
    assert isinstance(problem, MinMakespanProblem) and problem.budget == 4
    problem = normalize_problem(dag=simple_chain_dag, target_makespan=50)
    assert isinstance(problem, MinResourceProblem) and problem.target_makespan == 50


def test_normalize_accepts_sp_tree():
    from repro.core.series_parallel import SPLeaf, series

    tree = series(SPLeaf("a", RecursiveBinarySplitDuration(16)),
                  SPLeaf("b", KWaySplitDuration(9)))
    problem = normalize_problem(dag=tree, budget=4)
    assert isinstance(problem, MinMakespanProblem)
    assert "a" in problem.dag.jobs and "b" in problem.dag.jobs


def test_normalize_rejects_ambiguous_input(simple_chain_dag):
    with pytest.raises(ValidationError):
        normalize_problem(dag=simple_chain_dag, budget=4, target_makespan=10)
    with pytest.raises(ValidationError):
        normalize_problem(dag=simple_chain_dag)
    with pytest.raises(ValidationError):
        normalize_problem(MinMakespanProblem(simple_chain_dag, 4),
                          dag=simple_chain_dag, budget=4)
    with pytest.raises(ValidationError):
        normalize_problem()


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_insertion_order_invariant():
    def build(order):
        dag = TradeoffDAG()
        for name in order:
            dag.add_job(name, RecursiveBinarySplitDuration(16) if name == "x"
                        else ConstantDuration(0.0))
        dag.add_edge("s", "x")
        dag.add_edge("x", "t")
        return dag

    assert dag_fingerprint(build(["s", "x", "t"])) == dag_fingerprint(build(["t", "x", "s"]))


def test_fingerprint_distinguishes_durations_and_edges(simple_chain_dag):
    base = dag_fingerprint(simple_chain_dag)
    other = simple_chain_dag.copy()
    other.add_job("x", RecursiveBinarySplitDuration(32))  # replace duration
    assert dag_fingerprint(other) != base
    third = simple_chain_dag.copy()
    third.add_edge("s", "y")
    assert dag_fingerprint(third) != base


# ----------------------------------------------------------------------
# structure probe
# ----------------------------------------------------------------------
def test_structure_probe_chain(simple_chain_dag):
    structure = analyze_dag(simple_chain_dag)
    assert structure.is_chain
    assert structure.is_series_parallel
    assert structure.duration_families == {"constant", "binary", "kway"}
    assert structure.integral_breakpoints
    assert structure.exact_combinations >= 1


def test_structure_probe_is_memoized(simple_chain_dag):
    analyze_dag(simple_chain_dag)
    before = structure_cache_info()["hits"]
    again = analyze_dag(simple_chain_dag.copy())  # same content, new object
    assert structure_cache_info()["hits"] == before + 1
    assert again.fingerprint == dag_fingerprint(simple_chain_dag)


def test_structure_detects_non_sp():
    dag = layered_random_dag(3, 3, family="general", seed=11)
    structure = analyze_dag(dag)
    assert structure.num_jobs == 11  # 9 jobs + source + sink
    assert not structure.is_chain


# ----------------------------------------------------------------------
# registry and dispatch
# ----------------------------------------------------------------------
def test_dispatch_prefers_exact_on_small_sp_instances(simple_chain_dag):
    report = solve(dag=simple_chain_dag, budget=8)
    assert report.solver_id == "series-parallel-dp"
    assert report.certificate.passed and report.certificate.feasible


def test_dispatch_family_specialisation():
    dag = layered_random_dag(4, 4, family="kway", seed=5)
    limits = SolveLimits(max_exact_combinations=1)  # force approximations
    structure = analyze_dag(dag)
    problem = MinMakespanProblem(structure.dag, 8.0)
    spec = select_solver(problem, structure, limits, MIN_MAKESPAN)
    assert spec.solver_id in ("kway-5approx", "series-parallel-dp")
    ids = [s.solver_id for s in candidate_solvers(problem, structure, limits, MIN_MAKESPAN)]
    assert "exact-enumeration" not in ids
    assert "binary-4approx" not in ids  # wrong duration family


def test_dispatch_falls_back_to_bicriteria_on_general_durations():
    dag = layered_random_dag(3, 3, family="general", seed=11)
    report = solve(dag=dag, budget=6, limits=SolveLimits(max_exact_combinations=1))
    assert report.solver_id == "bicriteria-lp"


def test_named_method_and_solver_options(simple_chain_dag):
    report = solve(dag=simple_chain_dag, budget=8, method="bicriteria-lp", alpha=0.75)
    assert report.solver_id == "bicriteria-lp"
    assert report.solution.metadata["alpha"] == 0.75


def test_unknown_method_and_wrong_objective_raise(simple_chain_dag):
    with pytest.raises(ValidationError):
        solve(dag=simple_chain_dag, budget=8, method="no-such-solver")
    with pytest.raises(ValidationError):
        solve(dag=simple_chain_dag, target_makespan=40, method="greedy-path-reuse")


def test_register_and_unregister_custom_solver(simple_chain_dag):
    @register_solver("test-custom", summary="test", objectives=(MIN_MAKESPAN,),
                     kind="baseline", theorem="-", guarantee="none", priority=999,
                     can_solve=lambda p, s, lim: True)
    def _custom(problem, structure, limits, **options):
        return TradeoffSolution(makespan=structure.dag.makespan_value({}),
                                budget_used=0.0, algorithm="test-custom")

    try:
        assert "test-custom" in solver_ids()
        report = solve(dag=simple_chain_dag, budget=8, method="test-custom")
        assert report.solver_id == "test-custom"
        with pytest.raises(ValidationError):  # duplicate id rejected
            register_solver("test-custom", summary="dup", objectives=(MIN_MAKESPAN,),
                            kind="baseline", theorem="-", guarantee="none", priority=1,
                            can_solve=lambda p, s, lim: True)(lambda *a, **k: None)
    finally:
        assert unregister_solver("test-custom") is not None
    assert "test-custom" not in solver_ids()


def test_no_solver_error_when_nothing_matches(simple_chain_dag):
    structure = analyze_dag(simple_chain_dag)
    problem = MinMakespanProblem(structure.dag, 8.0)
    # no registered solver supports an unknown objective string
    with pytest.raises(NoSolverError):
        select_solver(problem, structure, SolveLimits(), "not-an-objective")


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------
def test_solution_cache_round_trip(simple_chain_dag):
    first = solve(dag=simple_chain_dag, budget=8)
    second = solve(dag=simple_chain_dag.copy(), budget=8)  # same content
    assert not first.from_cache and second.from_cache
    assert second.makespan == first.makespan
    third = solve(dag=simple_chain_dag, budget=9)  # different parameter
    assert not third.from_cache
    clear_caches()
    fourth = solve(dag=simple_chain_dag, budget=8)
    assert not fourth.from_cache


def test_cache_keying_includes_method_and_options(simple_chain_dag):
    solve(dag=simple_chain_dag, budget=8, method="bicriteria-lp", alpha=0.5)
    other = solve(dag=simple_chain_dag, budget=8, method="bicriteria-lp", alpha=0.75)
    assert not other.from_cache
    hit = solve(dag=simple_chain_dag, budget=8, method="bicriteria-lp", alpha=0.75)
    assert hit.from_cache


def test_cache_entries_are_immune_to_caller_mutation(simple_chain_dag):
    first = solve(dag=simple_chain_dag, budget=8)
    first.allocation["x"] = 999.0           # caller tampers with the result
    first.structure["num_jobs"] = -1
    second = solve(dag=simple_chain_dag, budget=8)
    assert second.from_cache
    assert second.allocation.get("x") != 999.0
    assert second.structure["num_jobs"] == simple_chain_dag.num_jobs


def test_unknown_options_strict_for_explicit_method(simple_chain_dag):
    with pytest.raises(ValidationError, match="does not accept options"):
        solve(dag=simple_chain_dag, budget=8, method="binary-4approx", alpha=0.5)
    # under auto-dispatch the same option is a hint, dropped if inapplicable
    report = solve(dag=simple_chain_dag, budget=8, alpha=0.75)
    assert report.solver_id == "series-parallel-dp"


def test_feasibility_computed_even_without_certificate():
    # an instance where the alpha=0.5 bi-criteria overshoots the budget
    dag = layered_random_dag(2, 2, family="general", seed=3, max_base=12)
    budget = 5.0
    certified = solve(dag=dag, budget=budget, method="bicriteria-lp")
    uncertified = solve(dag=dag, budget=budget, method="bicriteria-lp", validate=False)
    assert uncertified.certificate is None
    assert uncertified.parameter == budget
    assert uncertified.feasible == certified.feasible
    assert certified.feasible == (certified.budget_used <= budget + 1e-6)


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
def test_certificate_rejects_tampered_makespan(simple_chain_dag):
    problem = normalize_problem(dag=simple_chain_dag, budget=8)
    report = solve(problem)
    good = certify_solution(problem, report.solution)
    assert good.passed
    tampered = TradeoffSolution(makespan=report.makespan / 2,
                                budget_used=report.budget_used,
                                allocation=dict(report.allocation),
                                algorithm="tampered")
    bad = certify_solution(problem, tampered)
    assert not bad.passed
    assert not bad.checks["makespan_consistent"]


def test_certificate_rejects_understated_budget(simple_chain_dag):
    problem = normalize_problem(dag=simple_chain_dag, budget=8)
    report = solve(problem)
    assert report.budget_used > 0
    tampered = TradeoffSolution(makespan=report.makespan, budget_used=0.0,
                                allocation=dict(report.allocation), algorithm="tampered")
    bad = certify_solution(problem, tampered)
    assert not bad.checks["budget_covers_routing"]


def test_certificate_records_infeasibility_without_failing():
    dag = TradeoffDAG()
    dag.add_job("s")
    dag.add_job("x", GeneralStepDuration([(0, 10), (2, 1)]))
    dag.add_job("t")
    dag.add_edge("s", "x")
    dag.add_edge("x", "t")
    problem = normalize_problem(dag=dag, target_makespan=0.5)  # unachievable
    report = solve(problem, method="exact-enumeration")
    assert math.isinf(report.makespan)
    assert report.certificate.passed          # claims are consistent...
    assert not report.certificate.feasible    # ...but the target is not met


# ----------------------------------------------------------------------
# exact_reference helper
# ----------------------------------------------------------------------
def test_exact_reference_solves_small_and_declines_large(simple_chain_dag):
    ref = exact_reference(dag=simple_chain_dag, budget=8)
    assert ref is not None and get_solver(ref.solver_id).kind == "exact"

    big = layered_random_dag(4, 5, family="general", seed=3)
    assert exact_reference(dag=big, budget=10,
                           limits=SolveLimits(max_exact_combinations=1)) is None
