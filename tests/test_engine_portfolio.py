"""Tests for the parallel portfolio runner (thread executor for speed)."""

from __future__ import annotations

import time

import pytest

from repro.core.problem import MinMakespanProblem, MinResourceProblem, TradeoffSolution
from repro.engine import (
    MIN_MAKESPAN,
    Portfolio,
    SolveLimits,
    clear_caches,
    register_solver,
    solve,
    unregister_solver,
)
from repro.generators import get_workload, layered_random_dag
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _problem(name: str) -> MinMakespanProblem:
    workload = get_workload(name)
    return MinMakespanProblem(workload.build(), workload.budget)


def test_portfolio_race_returns_best_feasible():
    problem = _problem("small-layered-binary")
    portfolio = Portfolio(executor="thread")
    result = portfolio.solve(problem)

    assert result.runs, "at least one solver must finish"
    feasible = [r for r in result.runs if r.feasible and r.certificate.passed]
    assert feasible, "the portfolio includes within-budget solvers"
    assert result.makespan == min(r.makespan for r in feasible)
    assert result.best.feasible
    # the race must also never lose to solving with the winner directly
    direct = solve(problem, method=result.solver_id, use_cache=False)
    assert result.makespan == pytest.approx(direct.makespan)


def test_portfolio_explicit_methods_and_errors():
    # exact-enumeration is over its limit and must fail gracefully while
    # the greedy baseline still wins the race.
    dag = layered_random_dag(3, 3, family="general", seed=2)
    problem = MinMakespanProblem(dag, 6.0)
    portfolio = Portfolio(methods=["exact-enumeration", "greedy-path-reuse"],
                          executor="thread",
                          limits=SolveLimits(max_exact_combinations=1))
    result = portfolio.solve(problem)
    assert result.solver_id == "greedy-path-reuse"
    assert "exact-enumeration" in result.errors
    assert "ExactSearchLimit" in result.errors["exact-enumeration"]


def test_portfolio_all_failures_raise():
    dag = layered_random_dag(3, 3, family="general", seed=2)
    problem = MinMakespanProblem(dag, 6.0)
    portfolio = Portfolio(methods=["exact-enumeration"], executor="thread",
                          limits=SolveLimits(max_exact_combinations=1))
    with pytest.raises(ValidationError):
        portfolio.solve(problem)


def test_portfolio_min_resource_prefers_smallest_budget():
    workload = get_workload("small-layered-binary")
    problem = MinResourceProblem(workload.build(), target_makespan=60.0)
    portfolio = Portfolio(executor="thread")
    result = portfolio.solve(problem)
    feasible = [r for r in result.runs if r.feasible and r.certificate.passed]
    if feasible:
        assert result.budget_used == min(r.budget_used for r in feasible)


def test_portfolio_map_preserves_order_and_matches_sequential():
    names = ["small-layered-general", "small-layered-binary", "small-layered-kway",
             "deep-chain-binary"]
    problems = [_problem(name) for name in names]
    sequential = [solve(p, use_cache=False) for p in problems]

    portfolio = Portfolio(executor="thread")
    mapped = portfolio.map(problems)

    assert len(mapped) == len(problems)
    for seq, par in zip(sequential, mapped):
        assert par.solver_id == seq.solver_id
        assert par.makespan == pytest.approx(seq.makespan)
        assert par.budget_used == pytest.approx(seq.budget_used)


def test_portfolio_map_empty_and_invalid_executor():
    assert Portfolio(executor="thread").map([]) == []
    with pytest.raises(ValidationError):
        Portfolio(executor="fiber")


def test_portfolio_time_limit_bounds_the_wait():
    # a deliberately slow solver must not make the race block for its full
    # runtime: the fast baseline's finished run wins at the time limit.
    @register_solver("test-sleeper", summary="sleeps", objectives=(MIN_MAKESPAN,),
                     kind="baseline", theorem="-", guarantee="none", priority=998,
                     can_solve=lambda p, s, lim: True)
    def _sleeper(problem, structure, limits, **options):
        time.sleep(5.0)
        return TradeoffSolution(makespan=0.0, budget_used=0.0, algorithm="test-sleeper")

    try:
        problem = _problem("small-layered-binary")
        portfolio = Portfolio(methods=["test-sleeper", "greedy-path-reuse"],
                              executor="thread", max_workers=2,
                              limits=SolveLimits(time_limit=1.0))
        start = time.perf_counter()
        result = portfolio.solve(problem)
        elapsed = time.perf_counter() - start
        assert elapsed < 4.0, "solve() must not wait for the sleeper to finish"
        assert result.solver_id == "greedy-path-reuse"
        assert "test-sleeper" in result.errors
        assert "unfinished" in result.errors["test-sleeper"]
    finally:
        unregister_solver("test-sleeper")


def test_portfolio_race_filters_solver_specific_options():
    # alpha= belongs to the LP pipeline only; the other raced solvers must
    # not crash on it (options are filtered per solver spec).
    problem = _problem("small-layered-binary")
    result = Portfolio(executor="thread").solve(problem, alpha=0.75)
    assert not result.errors, result.errors
    lp_runs = [r for r in result.runs if r.solver_id == "bicriteria-lp"]
    assert lp_runs and lp_runs[0].solution.metadata["alpha"] == 0.75


def test_portfolio_map_skip_errors_keeps_other_scenarios():
    from repro.core.dag import TradeoffDAG
    from repro.core.duration import ConstantDuration

    # constant durations -> a single enumeration combination, so this one
    # stays solvable even under max_exact_combinations=1
    tiny = TradeoffDAG()
    tiny.add_job("s")
    tiny.add_job("x", ConstantDuration(3.0))
    tiny.add_job("t")
    tiny.add_edge("s", "x")
    tiny.add_edge("x", "t")
    good = MinMakespanProblem(tiny, 2.0)
    bad = MinMakespanProblem(layered_random_dag(3, 3, family="general", seed=2), 6.0)
    portfolio = Portfolio(executor="thread", limits=SolveLimits(max_exact_combinations=1))
    # default: the failing scenario raises
    with pytest.raises(Exception):
        portfolio.map([good, bad, good], method="exact-enumeration")
    # skip_errors: failures become None, the rest of the sweep survives
    results = portfolio.map([good, bad, good], method="exact-enumeration",
                            skip_errors=True)
    assert results[1] is None
    assert results[0] is not None and results[2] is not None
    assert results[0].makespan == results[2].makespan


def test_portfolio_persistent_pool_reused_across_calls():
    problems = [_problem("small-layered-binary"), _problem("small-layered-kway")]
    with Portfolio(executor="thread") as portfolio:
        first_pool = portfolio._pool
        assert first_pool is not None
        a = portfolio.map(problems)
        b = portfolio.map(problems)
        assert portfolio._pool is first_pool
    assert portfolio._pool is None  # closed on exit
    for x, y in zip(a, b):
        assert x.makespan == y.makespan


def test_portfolio_process_executor_round_trips_reports():
    # one tiny problem through a real process pool: SolveReports (and the
    # problems themselves) must survive pickling.
    problem = _problem("small-layered-binary")
    portfolio = Portfolio(methods=["greedy-path-reuse", "bicriteria-lp"],
                          executor="process", max_workers=2)
    result = portfolio.solve(problem)
    assert result.runs and result.best.certificate is not None
    assert result.solver_id in ("greedy-path-reuse", "bicriteria-lp")
