"""Tests for the exact solvers and the baseline heuristics."""

from __future__ import annotations

import math

import pytest

from repro.core.arcdag import ArcDAG
from repro.core.baselines import (
    greedy_global_reuse,
    greedy_no_reuse,
    greedy_path_reuse,
    no_resource_solution,
    peak_resource_usage,
    uniform_split_solution,
)
from repro.core.duration import GeneralStepDuration
from repro.core.exact import (
    ExactSearchLimit,
    exact_min_makespan,
    exact_min_makespan_arcs,
    exact_min_resource,
    exact_min_resource_arcs,
)
from repro.generators import fork_join_dag, layered_random_dag


class TestExactNodeSolvers:
    def test_chain_optimum(self, simple_chain_dag):
        solution = exact_min_makespan(simple_chain_dag, budget=8)
        # 8 units reused along the chain: best allocation is x=8 (12), y in {6,8} -> 12
        assert solution.makespan == 24
        assert solution.budget_used <= 8

    def test_budget_zero(self, simple_chain_dag):
        solution = exact_min_makespan(simple_chain_dag, budget=0)
        assert solution.makespan == simple_chain_dag.makespan_value({})
        assert solution.budget_used == 0

    def test_monotone_in_budget(self, diamond_dag):
        previous = math.inf
        for budget in [0, 4, 8, 16]:
            value = exact_min_makespan(diamond_dag, budget).makespan
            assert value <= previous + 1e-9
            previous = value

    def test_min_resource_inverse_of_min_makespan(self, simple_chain_dag):
        budget = 8
        best = exact_min_makespan(simple_chain_dag, budget)
        back = exact_min_resource(simple_chain_dag, best.makespan)
        assert back.budget_used <= budget + 1e-9
        assert back.makespan <= best.makespan + 1e-9

    def test_min_resource_infeasible(self, simple_chain_dag):
        solution = exact_min_resource(simple_chain_dag, target_makespan=1)
        assert math.isinf(solution.budget_used)

    def test_search_limit(self):
        dag = layered_random_dag(4, 5, family="general", seed=3)
        with pytest.raises(ExactSearchLimit):
            exact_min_makespan(dag, budget=10, max_combinations=10)


class TestExactArcSolvers:
    def build(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", GeneralStepDuration([(0, 4), (2, 0)]), arc_id="e1")
        dag.add_arc("a", "t", GeneralStepDuration([(0, 3), (1, 0)]), arc_id="e2")
        dag.add_arc("s", "b", GeneralStepDuration([(0, 5), (2, 0)]), arc_id="e3")
        dag.add_arc("b", "t", GeneralStepDuration([(0, 1)]), arc_id="e4")
        return dag

    def test_min_makespan_arcs(self):
        dag = self.build()
        value, flow = exact_min_makespan_arcs(dag, budget=4)
        # 2 units down each branch expedite e1, e2 and e3: makespan = max(0, 1) = 1
        assert value == 1
        assert sum(flow.get(a, 0.0) for a in ["e1", "e3"]) <= 4 + 1e-9

    def test_min_makespan_arcs_zero_budget(self):
        dag = self.build()
        value, _ = exact_min_makespan_arcs(dag, budget=0)
        assert value == max(4 + 3, 5 + 1)

    def test_min_resource_arcs(self):
        dag = self.build()
        value, flow = exact_min_resource_arcs(dag, target_makespan=1)
        assert value == 4
        value_loose, _ = exact_min_resource_arcs(dag, target_makespan=7)
        assert value_loose <= 2

    def test_min_resource_arcs_unreachable_target(self):
        dag = self.build()
        value, flow = exact_min_resource_arcs(dag, target_makespan=0.5)
        assert math.isinf(value)
        assert flow == {}

    def test_consistency_with_node_solver(self, simple_chain_dag):
        from repro.core.arcdag import expand_to_two_tuples, node_to_arc_dag

        arc_dag, _ = node_to_arc_dag(simple_chain_dag)
        expansion = expand_to_two_tuples(arc_dag)
        budget = 8
        node_value = exact_min_makespan(simple_chain_dag, budget).makespan
        arc_value, _ = exact_min_makespan_arcs(expansion.arc_dag, budget)
        assert arc_value == pytest.approx(node_value)


class TestBaselines:
    def test_no_resource(self, diamond_dag):
        solution = no_resource_solution(diamond_dag)
        assert solution.makespan == diamond_dag.makespan_value({})
        assert solution.budget_used == 0

    def test_uniform_split_respects_sum_budget(self, diamond_dag):
        solution = uniform_split_solution(diamond_dag, budget=8)
        assert solution.budget_used <= 8
        assert solution.makespan <= diamond_dag.makespan_value({})

    def test_greedy_variants_improve_and_respect_budgets(self, diamond_dag):
        budget = 8
        base = diamond_dag.makespan_value({})
        path = greedy_path_reuse(diamond_dag, budget)
        no_reuse = greedy_no_reuse(diamond_dag, budget)
        global_reuse = greedy_global_reuse(diamond_dag, budget)
        for solution in (path, no_reuse, global_reuse):
            assert solution.makespan <= base
            assert solution.budget_used <= budget + 1e-9

    def test_reuse_hierarchy_on_chains(self, simple_chain_dag):
        """Path reuse is at least as powerful as no reuse on a chain."""
        budget = 8
        path = greedy_path_reuse(simple_chain_dag, budget)
        no_reuse = greedy_no_reuse(simple_chain_dag, budget)
        assert path.makespan <= no_reuse.makespan + 1e-9

    def test_peak_resource_usage(self, diamond_dag):
        # two parallel jobs holding 4 units each overlap in time
        peak = peak_resource_usage(diamond_dag, {"a1": 4, "b1": 4})
        assert peak == 8
        # serial jobs on one branch never overlap
        peak_serial = peak_resource_usage(diamond_dag, {"a1": 4, "a2": 4})
        assert peak_serial == 4

    def test_greedy_on_fork_join_splits_budget(self):
        dag = fork_join_dag(width=4, work=16, family="binary")
        solution = greedy_path_reuse(dag, budget=8)
        # the budget must be split across the 4 parallel tasks
        assert solution.budget_used <= 8
        assert solution.makespan < dag.makespan_value({})
