"""Smoke test: every script in examples/ must run end to end.

The examples are executable documentation; refactors (like routing the
solvers through the engine) must not silently rot them.  Each script is
executed with :mod:`runpy` as ``__main__``, with stdout captured and a
small argv so the heavier demos stay quick.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: Extra argv per script (parallel_mm_races accepts the problem size n).
_ARGV = {"parallel_mm_races.py": ["4"]}


def test_examples_directory_is_populated():
    assert len(EXAMPLE_SCRIPTS) >= 4, "examples/ should not shrink silently"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)] + _ARGV.get(script.name, []))
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
    assert "Traceback" not in out
