"""Tests for ResourceFlow: conservation, event times, makespan, critical path."""

from __future__ import annotations

import pytest

from repro.core.arcdag import ArcDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.flow import FlowValidationError, ResourceFlow


def build_two_path_dag() -> ArcDAG:
    """s -> a -> t (improvable) in parallel with s -> b -> t (fixed)."""
    dag = ArcDAG()
    dag.add_arc("s", "a", GeneralStepDuration([(0, 10), (4, 2)]), arc_id="sa")
    dag.add_arc("a", "t", GeneralStepDuration([(0, 5), (2, 0)]), arc_id="at")
    dag.add_arc("s", "b", GeneralStepDuration([(0, 7)]), arc_id="sb")
    dag.add_arc("b", "t", ConstantDuration(0.0), arc_id="bt")
    return dag


class TestValidation:
    def test_valid_flow_passes(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 4})
        flow.validate()

    def test_conservation_violation_detected(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 1})
        with pytest.raises(FlowValidationError):
            flow.validate()

    def test_negative_flow_detected(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": -1, "at": -1})
        with pytest.raises(FlowValidationError):
            flow.validate()

    def test_budget_used_is_source_outflow(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 4, "sb": 2, "bt": 2})
        assert flow.budget_used() == 6

    def test_small_numerical_noise_tolerated(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4.0, "at": 4.0 + 1e-10})
        flow.validate()


class TestSchedule:
    def test_event_times_and_makespan_without_flow(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {})
        times = flow.event_times()
        assert times["a"] == 10
        assert times["b"] == 7
        assert flow.makespan() == 15  # 10 + 5 via a

    def test_flow_reduces_makespan(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 4})
        # sa drops to 2, at to 0 -> path via a costs 2; path via b costs 7
        assert flow.makespan() == 7

    def test_critical_path_identifies_bottleneck(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 4})
        path = flow.critical_path()
        assert [a.arc_id for a in path] == ["sb", "bt"]

    def test_arc_durations(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 1})
        durations = flow.arc_durations()
        assert durations["sa"] == 2
        assert durations["at"] == 5  # 1 unit is below the 2-unit breakpoint

    def test_is_integral_and_rounded(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4.0000000001, "at": 4.0})
        assert flow.is_integral()
        assert flow.rounded().flow["sa"] == pytest.approx(4.0)

    def test_job_resources_lookup(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 4})
        resources = flow.job_resources({"first": "sa", "second": "at", "other": "sb"})
        assert resources == {"first": 4, "second": 4, "other": 0}

    def test_summary_string(self):
        dag = build_two_path_dag()
        flow = ResourceFlow(dag, {"sa": 4, "at": 4})
        text = flow.summary()
        assert "budget_used=4" in text
