"""Tests for the instance generators and the analysis / table helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ratios import RatioMeasurement, measure_ratios, summarize_measurements
from repro.analysis.report import format_float, format_table
from repro.analysis.tables import render_table1, render_table2, render_table3, table1_summary
from repro.core.bicriteria import solve_min_makespan_bicriteria
from repro.core.baselines import greedy_path_reuse
from repro.generators import (
    balanced_sp_tree,
    chain_dag,
    fork_join_dag,
    get_workload,
    layered_random_dag,
    random_sp_tree,
    staged_fork_join_dag,
    workload_names,
)


class TestGenerators:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.sampled_from(["general", "binary", "kway"]),
           st.integers(0, 100))
    def test_layered_dag_is_valid(self, layers, per_layer, family, seed):
        dag = layered_random_dag(layers, per_layer, family=family, seed=seed)
        dag.validate()
        assert dag.source == "source"
        assert dag.sink == "sink"
        assert dag.num_jobs == layers * per_layer + 2

    def test_layered_dag_deterministic_for_seed(self):
        a = layered_random_dag(3, 3, seed=7)
        b = layered_random_dag(3, 3, seed=7)
        assert a.edges == b.edges
        assert a.makespan_value({}) == b.makespan_value({})

    def test_chain_dag(self):
        dag = chain_dag([10, 20, 30], family="binary")
        dag.validate()
        assert dag.makespan_value({}) == 60

    def test_fork_join_dag(self):
        dag = fork_join_dag(width=5, work=16, family="kway")
        dag.validate()
        assert dag.makespan_value({}) == 16

    def test_staged_fork_join(self):
        dag = staged_fork_join_dag([2, 3], work=8, family="binary", seed=0)
        dag.validate()
        assert dag.makespan_value({}) >= 16

    def test_random_sp_tree_leaf_count(self):
        tree = random_sp_tree(7, seed=3)
        assert len(tree.leaves()) == 7

    def test_balanced_sp_tree(self):
        tree = balanced_sp_tree(3, seed=1)
        assert len(tree.leaves()) == 8

    def test_workload_registry(self):
        assert len(workload_names()) >= 8
        for name in workload_names():
            workload = get_workload(name)
            dag = workload.build()
            dag.validate()
            assert workload.budget >= 0
        with pytest.raises(Exception):
            get_workload("does-not-exist")


class TestAnalysis:
    def test_measure_ratios_and_summary(self):
        workload = get_workload("small-layered-binary")
        dag = workload.build()
        measurements = measure_ratios(
            dag, workload.budget, workload.name,
            {
                "bicriteria": lambda d, b: solve_min_makespan_bicriteria(d, b, 0.5),
                "greedy": greedy_path_reuse,
            },
        )
        assert len(measurements) == 2
        for m in measurements:
            if m.exact_optimum is not None:
                assert m.ratio_vs_exact >= 1 - 1e-9
        summary = summarize_measurements(measurements)
        assert set(summary) == {"bicriteria", "greedy"}
        assert summary["bicriteria"]["count"] == 1

    def test_ratio_edge_cases(self):
        m = RatioMeasurement("w", "a", budget=0, makespan=0, budget_used=0,
                             lp_lower_bound=0, exact_optimum=0)
        assert m.ratio_vs_exact == 1.0
        assert m.budget_ratio == 1.0
        assert m.ratio_vs_lp is None

    def test_format_helpers(self):
        assert format_float(3.0) == "3"
        assert format_float(3.14159, digits=2) == "3.14"
        assert format_float(None) == "-"
        table = format_table(["a", "bb"], [[1, 2.5], ["x", None]])
        assert "a" in table and "bb" in table and "2.500" in table

    def test_table1_structure(self):
        rows = table1_summary()
        assert len(rows) == 3
        names = {row["duration_function"] for row in rows}
        assert names == {"General non-increasing", "Recursive binary", "Multiway splitting"}
        rendered = render_table1({"Recursive binary": {"worst_ratio_vs_exact": 1.7,
                                                       "worst_budget_ratio": 1.0}})
        assert "Recursive binary" in rendered
        assert "1.7" in rendered

    def test_table2_and_table3_render(self):
        t2 = render_table2()
        t3 = render_table3(21)
        assert "C(5)" in t2
        assert "C(5)" in t3
        assert len(t2.splitlines()) == 10  # header + separator + 8 rows
        assert len(t3.splitlines()) == 10
