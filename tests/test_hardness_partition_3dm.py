"""Tests for the Partition (Section 4.3) and numerical 3DM (Appendix A) reductions."""

from __future__ import annotations


import pytest
from hypothesis import given, settings, strategies as st

from repro.hardness.matching3d import (
    Numerical3DMInstance,
    best_achievable_makespan,
    build_matching3d_dag,
    construct_matching_flow,
)
from repro.hardness.partition import (
    PartitionInstance,
    build_partition_dag,
    construct_partition_flow,
)
from repro.hardness.treewidth import (
    decomposition_width,
    partition_construction_decomposition,
    tree_decomposition_is_valid,
)
from repro.hardness.verify import verify_matching3d_reduction, verify_partition_reduction


class TestPartitionInstances:
    def test_brute_force(self):
        assert PartitionInstance((1, 1, 2)).is_partitionable()
        assert PartitionInstance((3, 5, 8)).is_partitionable()
        assert not PartitionInstance((1, 2, 4)).is_partitionable()
        assert not PartitionInstance((1, 1, 1)).is_partitionable()

    def test_subset_sums_to_half(self):
        instance = PartitionInstance((2, 3, 5, 4))
        subset = instance.solve_brute_force()
        assert sum(instance.values[i] for i in subset) == instance.total // 2


class TestPartitionReduction:
    @pytest.mark.parametrize("values", [(1, 1, 2), (2, 3, 5, 4), (3, 3, 2, 2, 2), (1, 2, 4),
                                        (2, 2, 3), (1, 1, 1, 1)])
    def test_reduction_agrees_with_brute_force(self, values):
        report = verify_partition_reduction(PartitionInstance(values))
        assert report.agrees
        if report.source_yes:
            assert report.forward_witness_ok
            assert report.reduced_optimum == report.threshold

    def test_witness_flow_budget_and_makespan(self):
        instance = PartitionInstance((2, 3, 5, 4))
        construction = build_partition_dag(instance)
        subset = instance.solve_brute_force()
        witness = construct_partition_flow(construction, subset)
        assert witness.budget_used() == instance.total
        assert witness.makespan() == instance.total / 2

    def test_unbalanced_split_has_larger_makespan(self):
        instance = PartitionInstance((2, 3, 5, 4))
        construction = build_partition_dag(instance)
        witness = construct_partition_flow(construction, {0})  # only the "2" on top
        assert witness.makespan() == max(2, 3 + 5 + 4)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(1, 4), min_size=2, max_size=4))
    def test_random_small_instances(self, values):
        report = verify_partition_reduction(PartitionInstance(tuple(values)))
        assert report.agrees


class TestTreewidth:
    def test_decomposition_valid_and_bounded(self):
        for values in [(1, 2), (2, 3, 5, 4), (1, 1, 1, 1, 1, 1)]:
            construction = build_partition_dag(PartitionInstance(values))
            vertices, edges, bags, tree_edges = partition_construction_decomposition(construction)
            assert tree_decomposition_is_valid(vertices, edges, bags, tree_edges)
            # width is constant (independent of the number of elements) and <= 15
            assert decomposition_width(bags) <= 15

    def test_invalid_decomposition_detected(self):
        construction = build_partition_dag(PartitionInstance((1, 2)))
        vertices, edges, bags, tree_edges = partition_construction_decomposition(construction)
        broken = [set(bag) for bag in bags]
        broken[0].discard("v0")
        broken[-1].discard("v0") if len(broken) > 1 else None
        # removing a vertex used by edges from every bag breaks edge coverage
        for bag in broken:
            bag.discard("v0")
        assert not tree_decomposition_is_valid(vertices, edges, broken, tree_edges)

    def test_width_computation(self):
        assert decomposition_width([{1, 2, 3}, {2, 3}]) == 2


class Test3DMInstances:
    def test_solvable_instance(self):
        instance = Numerical3DMInstance((1, 2), (2, 3), (4, 2))
        matching = instance.solve_brute_force()
        assert matching is not None
        for i, j, k in matching:
            assert instance.a[i] + instance.b[j] + instance.c[k] == instance.target

    def test_unsolvable_instance(self):
        instance = Numerical3DMInstance((1, 1), (1, 1), (1, 5))
        assert not instance.is_solvable()

    def test_total_must_be_divisible(self):
        with pytest.raises(Exception):
            Numerical3DMInstance((1, 2), (1, 1), (1, 1))


class Test3DMReduction:
    @pytest.mark.parametrize("a,b,c", [
        ((1, 2), (2, 3), (4, 2)),       # solvable
        ((1, 1), (1, 1), (1, 5)),       # unsolvable
        ((1, 2, 3), (1, 2, 3), (1, 2, 3)),
    ])
    def test_reduction_agrees(self, a, b, c):
        instance = Numerical3DMInstance(a, b, c)
        report = verify_matching3d_reduction(instance)
        assert report.agrees
        if report.source_yes:
            assert report.forward_witness_ok

    def test_witness_flow_properties(self):
        instance = Numerical3DMInstance((1, 2), (2, 3), (4, 2))
        construction = build_matching3d_dag(instance)
        matching = instance.solve_brute_force()
        witness = construct_matching_flow(construction, matching)
        # the source feeds only the edgeA arcs, n units each -> budget n^2
        assert witness.budget_used() == construction.budget == instance.n ** 2
        assert witness.makespan() == construction.target_makespan

    def test_budget_is_n_squared_per_matcher_stage(self):
        """The paper's budget accounting: n^2 units flow through each matcher."""
        instance = Numerical3DMInstance((1, 2), (2, 3), (4, 2))
        construction = build_matching3d_dag(instance)
        matching = instance.solve_brute_force()
        witness = construct_matching_flow(construction, matching)
        n = instance.n
        # every edgeA arc carries n units
        for i in range(n):
            arc_id = construction.arc_ids[("edgeA", i)]
            assert witness.flow_on(arc_id) == n

    def test_makespan_formula(self):
        instance = Numerical3DMInstance((1, 2), (2, 3), (4, 2))
        construction = build_matching3d_dag(instance)
        assert best_achievable_makespan(construction) == 2 * construction.big_m + instance.target

    def test_single_element_instance(self):
        instance = Numerical3DMInstance((2,), (3,), (4,))
        report = verify_matching3d_reduction(instance)
        assert report.source_yes and report.agrees
