"""Tests for 1-in-3SAT and the Theorem 4.1 / Lemma 4.2 reduction."""

from __future__ import annotations


import pytest

from repro.core.exact import exact_min_makespan_arcs
from repro.hardness.gadgets_general import (
    TABLE2_HEADER,
    build_theorem41_dag,
    construct_satisfying_flow,
    table2_rows,
)
from repro.hardness.sat import (
    OneInThreeSatInstance,
    figure9_formula,
    random_one_in_three_sat,
    satisfiable_one_in_three_sat,
)
from repro.hardness.verify import verify_theorem41


class TestSatInstances:
    def test_figure9_formula_is_satisfiable_with_paper_witness(self):
        formula = figure9_formula()
        paper_assignment = {1: True, 2: True, 3: False}
        assert formula.is_one_in_three_satisfying(paper_assignment)

    def test_clause_true_count(self):
        formula = figure9_formula()
        assignment = {1: True, 2: True, 3: True}
        # (V1 v ~V2 v V3): V1 true, ~V2 false, V3 true -> 2 true literals
        assert formula.clause_true_count(formula.clauses[0], assignment) == 2

    def test_unsatisfiable_instance(self):
        formula = OneInThreeSatInstance(3, ((1, 2, 3), (-1, -2, -3)))
        assert not formula.is_satisfiable()

    def test_planted_instances_are_satisfiable(self):
        for seed in range(5):
            instance, witness = satisfiable_one_in_three_sat(5, 4, seed=seed)
            assert instance.is_one_in_three_satisfying(witness)

    def test_random_instance_shape(self):
        instance = random_one_in_three_sat(6, 5, seed=1)
        assert instance.num_clauses == 5
        for clause in instance.clauses:
            assert len({abs(lit) for lit in clause}) == 3

    def test_invalid_clauses_rejected(self):
        with pytest.raises(Exception):
            OneInThreeSatInstance(2, ((1, 2, 3),))
        with pytest.raises(Exception):
            OneInThreeSatInstance(3, ((1, 2),))  # type: ignore[arg-type]


class TestTheorem41Construction:
    def test_gadget_sizes(self):
        formula = figure9_formula()
        construction = build_theorem41_dag(formula)
        n, m = formula.num_variables, formula.num_clauses
        # 6 vertices per variable, 10 per clause, plus S and T
        assert construction.arc_dag.num_vertices == 6 * n + 10 * m + 2
        assert construction.budget == n + 2 * m
        assert construction.target_makespan == 1

    def test_no_resource_makespan_is_three(self):
        """Without any resource both gadget types have duration-3 paths."""
        formula = OneInThreeSatInstance(3, ((1, 2, 3),))
        construction = build_theorem41_dag(formula)
        value, _ = exact_min_makespan_arcs(construction.arc_dag, budget=0)
        assert value == 3

    def test_witness_flow_achieves_makespan_one(self):
        formula = figure9_formula()
        construction = build_theorem41_dag(formula)
        assignment = formula.solve_brute_force()
        witness = construct_satisfying_flow(construction, assignment)
        assert witness.budget_used() == construction.budget
        assert witness.makespan() == 1
        assert witness.is_integral()

    def test_witness_rejected_for_bad_assignment(self):
        formula = figure9_formula()
        construction = build_theorem41_dag(formula)
        bad = {1: True, 2: True, 3: True}
        assert not formula.is_one_in_three_satisfying(bad)
        with pytest.raises(Exception):
            construct_satisfying_flow(construction, bad)

    def test_reduction_yes_instance(self):
        report = verify_theorem41(OneInThreeSatInstance(3, ((1, 2, 3),)))
        assert report.source_yes
        assert report.reduced_optimum == 1
        assert report.forward_witness_ok
        assert report.agrees

    def test_reduction_no_instance_has_gap_two(self):
        """Theorem 4.3: no-instances have optimal makespan >= 2 (here exactly 2)."""
        # restrict to one unsatisfiable clause pair to keep the exact search fast
        small = OneInThreeSatInstance(3, ((1, 2, 3), (-1, -2, -3)))
        assert not small.is_satisfiable()
        report = verify_theorem41(small)
        assert not report.source_yes
        assert report.reduced_optimum >= 2
        assert report.agrees

    def test_literal_vertices(self):
        formula = figure9_formula()
        construction = build_theorem41_dag(formula)
        assert construction.literal_vertex(1).endswith("V2")
        assert construction.literal_vertex(-1).endswith("V3")
        assert construction.negated_literal_vertex(1).endswith("V3")


class TestTable2:
    def test_has_eight_rows(self):
        rows = table2_rows()
        assert len(rows) == 8
        assert len(TABLE2_HEADER) == 6

    def test_matches_paper_values(self):
        """Exactly the Table 2 entries: C(5), C(6), C(7) per truth assignment."""
        expected = {
            ("True", "True", "True"): (1, 1, 1),
            ("False", "True", "True"): (1, 1, 1),
            ("True", "False", "True"): (1, 1, 1),
            ("True", "True", "False"): (1, 1, 1),
            ("False", "False", "True"): (0, 1, 1),
            ("False", "True", "False"): (1, 0, 1),
            ("True", "False", "False"): (1, 1, 0),
            ("False", "False", "False"): (1, 1, 1),
        }
        for vi, vj, vk, c5, c6, c7 in table2_rows():
            assert expected[(vi, vj, vk)] == (c5, c6, c7)

    def test_exactly_one_zero_iff_one_in_three(self):
        for vi, vj, vk, c5, c6, c7 in table2_rows():
            truths = [v == "True" for v in (vi, vj, vk)]
            zeros = [c5, c6, c7].count(0)
            if truths.count(True) == 1:
                assert zeros == 1
            else:
                assert zeros == 0
