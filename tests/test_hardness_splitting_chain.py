"""Tests for the Section 4.2 construction components and the Theorem 4.4 chain."""

from __future__ import annotations

import math

import pytest

from repro.hardness.gadgets_splitting import (
    TABLE3_HEADER,
    build_section42_dag,
    composite_node_duration,
    section42_parameters,
    table3_rows,
    variable_branch_finish_times,
)
from repro.hardness.minresource_chain import (
    build_variable_chain,
    construct_chain_flow,
    minresource_gap,
)
from repro.hardness.sat import OneInThreeSatInstance, figure9_formula


class TestCompositeNode:
    def test_no_resource_duration(self):
        # order k takes k + 2 without resource (Figure 12)
        assert composite_node_duration(10, 0) == 12
        assert composite_node_duration(16, 1) == 18

    def test_two_units_duration(self):
        # with 2 units: k/2 + 4, for both reducer families
        assert composite_node_duration(10, 2, "kway") == 9
        assert composite_node_duration(16, 2, "kway") == 12
        assert composite_node_duration(16, 2, "binary") == 12

    def test_matches_paper_formula(self):
        for k in [4, 8, 16, 42, 100]:
            assert composite_node_duration(k, 0) == k + 2
            assert composite_node_duration(k, 2) == math.ceil(k / 2) + 4


class TestParameters:
    def test_section42_parameters(self):
        params = section42_parameters(3, 2)
        # sink in-degree n + 3m = 9, k = 16, y = 4, x = max(2*4+13, 8) = 21
        assert params["sink_indegree"] == 9
        assert params["k"] == 16
        assert params["y"] == 4
        assert params["x"] == 21
        assert params["target_makespan"] == 7 * 21 + 2 * 4 + 12
        assert params["budget"] == 2 * 3 + 4 * 2

    def test_x_exceeds_constraint(self):
        """8x must exceed the target makespan 7x + 2y + 12 (i.e. x > 2y + 12)."""
        for n, m in [(3, 1), (3, 2), (5, 4), (10, 12)]:
            params = section42_parameters(n, m)
            assert 8 * params["x"] > params["target_makespan"]


class TestVariableTiming:
    def test_branch_finish_times(self):
        for x in [8, 21, 30]:
            times = variable_branch_finish_times(x)
            assert times["chosen_branch"] == 5 * x + 5
            assert times["other_branch"] == 6 * x + 3


class TestTable3:
    def test_shape(self):
        rows = table3_rows(21)
        assert len(rows) == 8
        assert len(TABLE3_HEADER) == 6

    def test_values_match_paper_pattern(self):
        """Table 3 entries are max-combinations of a=6x+4, b=5x+6 plus serialisation."""
        x = 21
        a = 6 * x + 4
        b = 5 * x + 6
        expected = {
            ("T", "T", "T"): (a + 1, a + 1, a + 1),
            ("F", "T", "T"): (a, a, a + 2),
            ("T", "F", "T"): (a, a + 2, a),
            ("T", "T", "F"): (a + 2, a, a),
            ("F", "F", "T"): (b + 2, a + 1, a + 1),
            ("F", "T", "F"): (a + 1, b + 2, a + 1),
            ("T", "F", "F"): (a + 1, a + 1, b + 2),
            ("F", "F", "F"): (a, a, a),
        }
        for vi, vj, vk, c5, c6, c7 in table3_rows(x):
            assert expected[(vi, vj, vk)] == (c5, c6, c7), (vi, vj, vk)

    def test_exactly_one_early_branch_iff_one_in_three(self):
        """Exactly one of C(5)/C(6)/C(7) finishes early (b+2 < a) iff the row is 1-in-3."""
        x = 21
        a = 6 * x + 4
        for vi, vj, vk, c5, c6, c7 in table3_rows(x):
            truths = [v == "T" for v in (vi, vj, vk)]
            early = sum(1 for value in (c5, c6, c7) if value < a)
            if truths.count(True) == 1:
                assert early == 1
            else:
                assert early == 0


class TestSection42Construction:
    def test_structural_properties(self):
        formula = OneInThreeSatInstance(3, ((1, 2, 3),))
        construction = build_section42_dag(formula, family="kway", scale=4)
        dag = construction.dag
        dag.validate()
        # single source and sink after normalisation
        normalized = dag.ensure_single_source_sink()
        assert len(normalized.sources()) == 1
        assert len(normalized.sinks()) == 1
        # size grows linearly with x: 3 composites + 2 chains per variable etc.
        assert dag.num_jobs > 3 * (3 * 4)

    def test_duration_families_applied(self):
        formula = OneInThreeSatInstance(3, ((1, 2, 3),))
        for family in ("kway", "binary"):
            construction = build_section42_dag(formula, family=family, scale=4)
            exits = [j for j in construction.dag.jobs if str(j).endswith("V2.out")]
            assert exits
            fn = construction.dag.duration_function(exits[0])
            assert fn.base_duration == 2 * 4  # order 2x with x = scale

    def test_parameters_attached(self):
        formula = figure9_formula()
        construction = build_section42_dag(formula, family="binary", scale=4)
        assert construction.parameters["budget"] == 2 * 3 + 4 * 2


class TestTheorem44Chain:
    def test_chain_timing_properties(self):
        n = 5
        construction = build_variable_chain(n)
        assignment = {1: True, 2: False, 3: True, 4: False, 5: True}
        flow = construct_chain_flow(construction, assignment)
        times = flow.event_times()
        for i in range(1, n + 1):
            assert times[("e", i)] == i - 1
            assert times[("f", i)] == i
        assert flow.makespan() == n
        assert flow.budget_used() == 2

    def test_chosen_branch_vertex_is_early(self):
        construction = build_variable_chain(3)
        flow = construct_chain_flow(construction, {1: True, 2: False, 3: True})
        times = flow.event_times()
        # chosen branch vertex reached one unit earlier than the other branch
        assert times[("p", 1)] == 0 and times[("q", 1)] == 1
        assert times[("q", 2)] == 1 and times[("p", 2)] == 2

    def test_without_resource_direct_edge_is_slow(self):
        construction = build_variable_chain(3)
        from repro.core.flow import ResourceFlow

        empty = ResourceFlow(construction.arc_dag, {})
        assert empty.makespan() >= construction.big_m

    def test_gap_record(self):
        gap = minresource_gap()
        assert gap["ratio"] == pytest.approx(1.5)
        assert gap["no_resource"] / gap["yes_resource"] == pytest.approx(1.5)
