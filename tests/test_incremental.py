"""Tests for the incremental sweep engine (grid-diff planning, manifest
v2 resume, adaptive sharding, cross-process claims).

Covers the planning tier end to end: ``grid_diff`` set arithmetic
(property-based), ``build_sweep_plan`` classification against the store
and a resume manifest, ``recommend_shard_size`` adaptivity, the v1-to-v2
manifest forward compatibility, store-level solve claims with the
``dup_solves_avoided`` short-circuit, the router's local planning tier
(pending-only cluster wire) and a kill-and-restart ``repro.serve``
resume over a real subprocess.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterClient, LocalCluster
from repro.engine import Portfolio, clear_caches, set_solution_store
from repro.engine.async_service import AsyncSweepService
from repro.engine.plan import (
    CELL_ALIAS_HIT,
    CELL_MANIFEST_DONE,
    CELL_PENDING,
    CELL_STORE_HIT,
    build_sweep_plan,
    recommend_shard_size,
)
from repro.engine.service import (
    MANIFEST_SCHEMA_VERSION,
    SweepService,
    load_manifest_state,
    write_manifest,
)
from repro.engine.store import SolutionStore, report_to_payload
from repro.scenarios import (
    Axis,
    ScenarioGrid,
    ScenarioSpec,
    grid_diff,
    materialization_info,
    reset_materialization_counters,
)


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    reset_materialization_counters()
    yield
    clear_caches()
    set_solution_store(None)


def run_async(coro, timeout: float = 60.0):
    async def _bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(_bounded())


def make_grid(widths, seeds=(0,), budgets=(4.0,)) -> ScenarioGrid:
    return ScenarioGrid(
        generators=({"generator": "fork-join",
                     "params": {"width": Axis(sorted(set(widths))),
                                "work": 8}},),
        seeds=tuple(seeds),
        budget_rules=tuple(("const", float(b)) for b in budgets))


def make_specs(widths, budget=4.0):
    return [ScenarioSpec("fork-join", {"width": w, "work": 8},
                         budget_rule=("const", float(budget)))
            for w in widths]


def thread_service(root, **kwargs) -> SweepService:
    return SweepService(store=SolutionStore(str(root)),
                        portfolio=Portfolio(executor="thread",
                                            max_workers=2),
                        **kwargs)


widths_st = st.lists(st.integers(2, 8), min_size=1, max_size=4,
                     unique=True)
seeds_st = st.lists(st.integers(0, 3), min_size=1, max_size=2,
                    unique=True)


# ---------------------------------------------------------------------------
# grid_diff properties
# ---------------------------------------------------------------------------

class TestGridDiff:
    @settings(deadline=None, max_examples=25)
    @given(widths_st, seeds_st)
    def test_self_diff_is_empty(self, widths, seeds):
        grid = make_grid(widths, seeds)
        diff = grid_diff(grid, grid)
        assert diff.is_empty
        assert not diff.gained and not diff.lost
        assert ({s.cell_digest() for s in diff.shared}
                == set(grid.cells_by_digest()))

    @settings(deadline=None, max_examples=25)
    @given(widths_st, widths_st, seeds_st)
    def test_partition_invariants(self, old_widths, new_widths, seeds):
        old, new = make_grid(old_widths, seeds), make_grid(new_widths, seeds)
        diff = grid_diff(old, new)
        old_digests = set(old.cells_by_digest())
        new_digests = set(new.cells_by_digest())
        gained = {s.cell_digest() for s in diff.gained}
        lost = {s.cell_digest() for s in diff.lost}
        shared = {s.cell_digest() for s in diff.shared}
        assert gained == new_digests - old_digests
        assert lost == old_digests - new_digests
        assert shared == old_digests & new_digests
        assert not gained & lost and not gained & shared and not lost & shared
        assert diff.counts() == {"gained": len(gained), "lost": len(lost),
                                 "shared": len(shared)}

    def test_diff_builds_zero_dags(self):
        reset_materialization_counters()
        diff = grid_diff(make_grid([2, 3, 4]), make_grid([3, 4, 5]))
        assert diff.counts() == {"gained": 1, "lost": 1, "shared": 2}
        assert materialization_info()["dag_builds"] == 0


# ---------------------------------------------------------------------------
# SweepPlan classification
# ---------------------------------------------------------------------------

def _planned(specs, store, manifest_done=None):
    from repro.engine.fingerprint import spec_alias_key
    cells = [(spec_alias_key(s, "auto"), s) for s in specs]
    return build_sweep_plan(cells, "auto", store=store,
                            manifest_done=manifest_done)


class TestSweepPlan:
    def test_cold_store_everything_pending(self, tmp_path):
        store = SolutionStore(str(tmp_path / "store"))
        plan = _planned(make_specs([2, 3, 4]), store)
        assert plan.count(CELL_PENDING) == 3 and not plan.done
        assert plan.hit_rate == 0.0

    def test_no_store_everything_pending(self):
        plan = _planned(make_specs([2, 3]), None)
        assert all(c.status == CELL_PENDING for c in plan.cells)

    def test_warm_store_alias_and_store_hits(self, tmp_path):
        specs = make_specs([2, 3, 4])
        with thread_service(tmp_path / "store") as service:
            service.run(specs)
        store = SolutionStore(str(tmp_path / "store"))
        # Fingerprint memo still warm: the plan probes by request key.
        plan = _planned(specs, store)
        assert plan.count(CELL_STORE_HIT) == 3
        # Fresh process (memo dropped): resolution goes via the persisted
        # spec alias instead, and the plan records the recovered key.
        clear_caches()
        plan = _planned(specs, store)
        assert plan.count(CELL_ALIAS_HIT) == 3
        assert all(c.key and c.report is not None for c in plan.cells)
        assert plan.hit_rate == 1.0

    def test_manifest_tokens_mark_cells_resumed(self, tmp_path):
        specs = make_specs([2, 3])
        with thread_service(tmp_path / "store") as service:
            service.run(specs)
        clear_caches()
        store = SolutionStore(str(tmp_path / "store"))
        from repro.engine.fingerprint import spec_alias_key
        aliases = {spec_alias_key(s, "auto") for s in specs}
        plan = _planned(specs, store, manifest_done=aliases)
        assert plan.count(CELL_MANIFEST_DONE) == 2
        summary = plan.summary()
        assert "2 manifest-done" in summary

    def test_batched_single_store_pass(self, tmp_path):
        specs = make_specs([2, 3, 4, 5])
        with thread_service(tmp_path / "store") as service:
            service.run(specs)
        clear_caches()
        store = SolutionStore(str(tmp_path / "store"))
        before = store.batched_lookups
        _planned(specs, store)
        # Every key went through the batched pass (4 alias probes plus
        # their 4 resolved targets), none through single-key get().
        assert store.batched_lookups == before + 8
        assert store.misses == 0


# ---------------------------------------------------------------------------
# Adaptive shard sizing
# ---------------------------------------------------------------------------

class TestAdaptiveSharding:
    def test_empty_pending_floor(self):
        assert recommend_shard_size(0, 4) == 1

    def test_cold_matches_static_heuristic(self):
        # hit_rate=0, one runner: the historical worker*oversubscription
        # lane count, so cold sweeps shard exactly as before.
        for pending in (1, 7, 32, 1000):
            for workers in (1, 2, 8):
                assert recommend_shard_size(pending, workers) == \
                       max(1, math.ceil(pending / (workers * 4)))

    def test_hit_rate_shrinks_shards(self):
        cold = recommend_shard_size(256, 4, hit_rate=0.0)
        warm = recommend_shard_size(256, 4, hit_rate=0.9)
        assert warm < cold

    def test_runner_count_spreads_shards(self):
        single = recommend_shard_size(256, 4, runner_count=1)
        spread = recommend_shard_size(256, 4, runner_count=4)
        assert spread < single
        assert spread >= 1

    def test_plan_shard_size_uses_measured_hit_rate(self, tmp_path):
        specs = make_specs(range(2, 10))
        with thread_service(tmp_path / "store") as service:
            service.run(specs[:6])
        clear_caches()
        store = SolutionStore(str(tmp_path / "store"))
        plan = _planned(specs, store)
        assert plan.count(CELL_PENDING) == 2
        assert plan.shard_size(4) == recommend_shard_size(
            2, 4, hit_rate=plan.hit_rate)


# ---------------------------------------------------------------------------
# Manifest schema v2 + v1 forward compatibility
# ---------------------------------------------------------------------------

class TestManifestSchema:
    def test_v1_manifest_still_readable(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": 1, "method": "auto",
                       "keys": ["k1", "k2"], "done": ["k1", "k2"],
                       "completed": True}, handle)
        state = load_manifest_state(path, "auto")
        assert state.schema == 1 and state.completed
        assert state.done == {"k1", "k2"} and state.tokens == {"k1", "k2"}
        # The historical gate: a v1 manifest of another method is ignored.
        assert load_manifest_state(path, "greedy").done == set()

    def test_v2_roundtrip_and_digest_gate(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        cells = {"alias-a": {"cell": "digest-a", "key": "key-a"}}
        assert write_manifest(path, "auto", ["alias-a"], {"alias-a"},
                              False, cells=cells)
        state = load_manifest_state(path, "auto")
        assert state.schema == MANIFEST_SCHEMA_VERSION
        assert state.done == {"alias-a"}
        assert {"alias-a", "key-a", "digest-a"} <= state.tokens
        assert state.cells == cells
        # Bare digests do not encode the method, so another method's load
        # trusts the alias and key tokens but not the digest.
        other = load_manifest_state(path, "greedy")
        assert "alias-a" in other.tokens and "key-a" in other.tokens
        assert "digest-a" not in other.tokens

    def test_torn_manifest_contributes_nothing(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "done": ["x"')
        state = load_manifest_state(path, "auto")
        assert state.done == set() and not state.completed

    def test_write_failure_reported_not_raised(self, tmp_path):
        bad = str(tmp_path / "missing-dir" / "manifest.json")
        assert write_manifest(bad, "auto", [], set(), False) is False

    def test_sweep_counts_manifest_write_errors(self, tmp_path):
        bad = str(tmp_path / "missing-dir" / "manifest.json")
        with thread_service(tmp_path / "store") as service:
            report = service.run(make_specs([2, 3]), manifest=bad)
        assert report.stats.computed == 2
        assert report.stats.manifest_write_errors >= 1


# ---------------------------------------------------------------------------
# Spec-native resume through the sync service
# ---------------------------------------------------------------------------

class TestSyncResume:
    def test_interrupted_grid_resumes_pending_only(self, tmp_path):
        grid = make_grid([2, 3, 4], budgets=(4.0, 8.0))
        specs = list(grid.expand())
        manifest = str(tmp_path / "manifest.json")
        with thread_service(tmp_path / "store") as service:
            first = service.run(specs[:2], manifest=manifest)
        assert first.stats.computed == 2
        # Simulate a process restart: drop every in-memory cache; only
        # the store directory and the manifest survive.
        clear_caches()
        with thread_service(tmp_path / "store") as service:
            report = service.run(grid, manifest=manifest)
        assert report.stats.scenarios == 6
        assert report.stats.resumed == 2
        assert report.stats.computed == 4
        state = load_manifest_state(manifest, "auto")
        assert state.completed and len(state.done) == 6
        assert len(state.cells) == 6

    def test_completed_grid_resweeps_for_free(self, tmp_path):
        grid = make_grid([2, 3], budgets=(4.0,))
        manifest = str(tmp_path / "manifest.json")
        with thread_service(tmp_path / "store") as service:
            service.run(grid, manifest=manifest)
        clear_caches()
        reset_materialization_counters()
        with thread_service(tmp_path / "store") as service:
            report = service.run(grid, manifest=manifest)
        assert report.stats.resumed == 2 and report.stats.computed == 0
        assert materialization_info()["dag_builds"] == 0
        assert all(r.source == "store" for r in report.results)


# ---------------------------------------------------------------------------
# Cross-process claims and dup_solves_avoided
# ---------------------------------------------------------------------------

class TestSolveClaims:
    def test_claim_lifecycle(self, tmp_path):
        store = SolutionStore(str(tmp_path / "store"))
        assert store.claim_solve("cell-1")
        assert store.solve_claim_holder("cell-1") == os.getpid()
        assert not store.claim_solve("cell-1")
        store.release_solve_claim("cell-1")
        assert store.solve_claim_holder("cell-1") is None
        assert store.claim_solve("cell-1")
        store.release_solve_claim("cell-1")

    def test_dead_claimant_is_taken_over(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        store = SolutionStore(str(tmp_path / "store"))
        assert store.claim_solve("cell-1")
        claim_dir = os.path.join(str(tmp_path / "store"), "claims")
        (claim_file,) = [os.path.join(claim_dir, name)
                         for name in os.listdir(claim_dir)]
        with open(claim_file, "w", encoding="utf-8") as handle:
            handle.write(str(probe.pid))
        other = SolutionStore(str(tmp_path / "store"))
        assert other.solve_claim_holder("cell-1") is None
        assert other.claim_solve("cell-1")
        assert other.stale_claims_recovered == 1

    def test_contended_but_unfinished_cell_solved_anyway(self, tmp_path,
                                                         monkeypatch):
        store = SolutionStore(str(tmp_path / "store"))
        monkeypatch.setattr(store, "claim_solve", lambda key: False)
        with SweepService(store=store,
                          portfolio=Portfolio(executor="thread",
                                              max_workers=2)) as service:
            report = service.run(make_specs([2, 3]))
        assert report.stats.computed == 2
        assert report.stats.dup_solves_avoided == 0

    def test_sync_dup_solve_short_circuits_to_store(self, tmp_path,
                                                    monkeypatch):
        specs = make_specs([2, 3])
        with thread_service(tmp_path / "warm") as warm:
            donor = {r.spec.cell_digest(): r.report
                     for r in warm.run(specs).results}
        clear_caches()
        store = SolutionStore(str(tmp_path / "store"))

        def lose_claim_to_a_finisher(alias):
            # Another process claimed this cell and already finished: its
            # report lands in the store between our plan and the recheck.
            for spec in specs:
                from repro.engine.fingerprint import spec_alias_key
                if spec_alias_key(spec, "auto") == alias:
                    store.put(alias, report_to_payload(
                        donor[spec.cell_digest()], alias))
            return False

        monkeypatch.setattr(store, "claim_solve", lose_claim_to_a_finisher)
        with SweepService(store=store,
                          portfolio=Portfolio(executor="thread",
                                              max_workers=2)) as service:
            report = service.run(specs)
        assert report.stats.dup_solves_avoided == 2
        assert report.stats.computed == 0
        assert all(r.source == "store" for r in report.results)

    def test_async_contended_cell_waits_then_reads(self, tmp_path):
        spec = make_specs([3])[0]
        with thread_service(tmp_path / "warm") as warm:
            donor = warm.run([spec]).results[0].report
        clear_caches()
        from repro.engine.fingerprint import spec_alias_key
        alias = spec_alias_key(spec, "auto")
        store = SolutionStore(str(tmp_path / "store"))
        assert store.claim_solve(alias)

        def finish_elsewhere():
            time.sleep(0.2)
            store.put(alias, report_to_payload(donor, alias))
            store.release_solve_claim(alias)

        async def body():
            service = AsyncSweepService(
                store=str(tmp_path / "store"),
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                threading.Thread(target=finish_elsewhere,
                                 daemon=True).start()
                ticket = await service.submit_specs([spec])
                results = await ticket.results()
                return results, service.stats

        results, stats = run_async(body())
        assert results[0].source == "store"
        assert stats.dup_solves_avoided == 1
        assert stats.computed == 0 and stats.shards == 0


# ---------------------------------------------------------------------------
# Router-side planning: only pending cells cross the cluster wire
# ---------------------------------------------------------------------------

class TestClusterPlanning:
    def test_warm_resubmit_sends_zero_wire_cells(self, tmp_path):
        store_dir = str(tmp_path / "store")
        grid = make_grid([2, 3], budgets=(4.0, 8.0))

        async def body():
            async with LocalCluster(2, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses(), store=store_dir)
                cold = await client.sweep_specs(grid)
                cold_wire = client.stats.wire_cells
                clear_caches()   # a fresh client process would start cold
                warm = await client.sweep_specs(grid)
                return cold, cold_wire, warm, client.stats

        cold, cold_wire, warm, stats = run_async(body())
        assert cold_wire == grid.size() == 4
        # Second submit: the router answered every cell from the shared
        # store; nothing crossed the wire to a runner.
        assert stats.wire_cells == cold_wire
        assert stats.planned_local == 4
        assert [r["key"] for r in warm] == [r["key"] for r in cold]
        assert {r["source"] for r in warm} == {"store"}
        assert all(r["report"] is not None for r in warm)

    def test_edited_grid_routes_only_gained_cells(self, tmp_path):
        store_dir = str(tmp_path / "store")
        old = make_grid([2, 3, 4])
        new = make_grid([3, 4, 5])

        async def body():
            async with LocalCluster(2, store_root=store_dir) as cluster:
                client = ClusterClient(cluster.addresses(), store=store_dir)
                await client.sweep_specs(old)
                after_cold = client.stats.wire_cells
                clear_caches()
                results = await client.sweep_specs(new)
                return after_cold, results, client.stats

        after_cold, results, stats = run_async(body())
        assert after_cold == 3
        # Of the edited grid only the genuinely new cell was routed.
        assert stats.wire_cells == after_cold + 1
        assert stats.planned_local == 2
        assert len(results) == 3


# ---------------------------------------------------------------------------
# adversarial-3dm generator
# ---------------------------------------------------------------------------

class TestAdversarial3DM:
    def test_values_are_seeded_and_well_formed(self):
        from repro.scenarios.adversarial import matching3d_values
        assert matching3d_values(3, 6, 7) == matching3d_values(3, 6, 7)
        assert matching3d_values(3, 6, 7) != matching3d_values(3, 6, 8)
        for seed in range(6):
            a, b, c = matching3d_values(3, 6, seed)
            assert len(a) == len(b) == len(c) == 3
            assert all(v >= 1 for v in a + b + c)
            assert (sum(a) + sum(b) + sum(c)) % 3 == 0

    def test_registered_generator_sweeps_in_a_grid(self, tmp_path):
        from repro.scenarios import generator_ids, get_generator
        assert "adversarial-3dm" in generator_ids()
        spec = get_generator("adversarial-3dm")
        assert spec.seeded and spec.adversarial
        grid = ScenarioGrid(
            generators=({"generator": "adversarial-3dm",
                         "params": {"n": 2, "max_value": 5}},),
            seeds=(0, 1),
            budget_rules=(("const", 40.0),))
        with thread_service(tmp_path / "store") as service:
            report = service.run(grid)
        assert report.stats.scenarios == 2
        assert report.stats.failed == 0
        assert all(r.report.solution is not None for r in report.results)

    def test_explicit_values_hook(self):
        from repro.scenarios.adversarial import matching3d_gadget_dag
        dag = matching3d_gadget_dag(values=((2, 2), (3, 3), (4, 4)))
        assert len(dag.jobs) > 2
        dag.validate()


# ---------------------------------------------------------------------------
# Kill-and-restart serve resume (real subprocess, v2 manifest on disk)
# ---------------------------------------------------------------------------

def _wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _spawn_serve(socket_path, store_dir, manifest):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--unix", socket_path,
         "--store", store_dir, "--manifest", manifest,
         "--executor", "thread", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    assert _wait_for(lambda: os.path.exists(socket_path)), \
        "serve subprocess did not bind its socket"
    return process


class TestServeKillRestartResume:
    def test_sigkilled_server_resumes_from_manifest(self, tmp_path):
        from repro.serve import request_metrics, request_sweep_spec
        store_dir = str(tmp_path / "store")
        manifest = str(tmp_path / "manifest.json")
        specs = list(make_grid([2, 3, 4], budgets=(4.0, 8.0)).expand())

        sock1 = str(tmp_path / "serve-1.sock")
        first = _spawn_serve(sock1, store_dir, manifest)
        try:
            partial = run_async(request_sweep_spec(
                specs[:2], unix_socket=sock1))
            assert len(partial) == 2
            assert all(r["error"] is None for r in partial)
            # Fence: the shard checkpoint must be on disk before the kill.
            assert _wait_for(lambda: len(load_manifest_state(
                manifest, "async-mixed").cells) >= 2)
        finally:
            first.kill()
            first.wait(timeout=10)
        assert not os.path.exists(sock1) or first.returncode is not None

        sock2 = str(tmp_path / "serve-2.sock")
        second = _spawn_serve(sock2, store_dir, manifest)
        try:
            results = run_async(request_sweep_spec(
                specs, unix_socket=sock2))
            metrics = run_async(request_metrics(unix_socket=sock2))
        finally:
            second.terminate()
            second.wait(timeout=10)

        assert len(results) == 6
        assert all(r["error"] is None and r["report"] is not None
                   for r in results)
        sources = [r["source"] for r in results]
        assert sources.count("store") == 2
        # The restarted server resumed the interrupted grid: the two
        # pre-kill cells came back from disk, only four were solved.
        assert metrics["service"]["resumed"] == 2
        assert metrics["service"]["computed"] == 4
        assert metrics["service"]["manifest_write_errors"] == 0
        state = load_manifest_state(manifest, "async-mixed")
        assert len(state.cells) == 6
