"""End-to-end integration tests spanning several subsystems.

These tests exercise the full pipelines a user of the library would run:
program -> races -> race DAG -> tradeoff DAG -> approximation vs exact,
and the cross-checks between independent implementations of the same
quantity (DP vs enumeration, LP lower bound vs exact optimum, simulated
reducers vs duration functions, witness flows vs exact gadget optima).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines import greedy_path_reuse, no_resource_solution
from repro.core.bicriteria import solve_min_makespan_bicriteria, solve_min_resource_bicriteria
from repro.core.exact import exact_min_makespan, exact_min_resource
from repro.core.minflow import allocation_min_budget
from repro.core.series_parallel import decompose_series_parallel, sp_exact_min_makespan
from repro.generators import fork_join_dag, layered_random_dag, staged_fork_join_dag
from repro.races.detector import find_data_races
from repro.races.matmul import parallel_mm_running_time
from repro.races.programs import histogram_program
from repro.races.racedag import race_dag_from_program, to_tradeoff_dag
from repro.races.simulator import makespan_upper_bound, simulate_race_dag


class TestProgramToOptimisationPipeline:
    """The Section 1 story, executed end to end on the histogram kernel."""

    def setup_method(self):
        self.program = histogram_program(40, 4, seed=9)
        self.race_dag = race_dag_from_program(self.program)
        self.dag = to_tradeoff_dag(self.race_dag, family="binary")

    def test_races_exist_and_are_reducible(self):
        races = find_data_races(self.program)
        assert races
        assert all(r.reducible for r in races)

    def test_reducers_shrink_the_optimised_makespan(self):
        base = no_resource_solution(self.dag).makespan
        solution = solve_min_makespan_bicriteria(self.dag, budget=12, alpha=0.5)
        exact = exact_min_makespan(self.dag, budget=12, max_combinations=500_000)
        assert exact.makespan < base
        assert solution.makespan <= 2 * exact.makespan + 1e-6

    def test_optimised_allocation_is_consistent_with_simulation(self):
        """Simulating the race DAG with the reducers the optimiser picked never
        exceeds the analytic makespan bound of that allocation."""
        exact = exact_min_makespan(self.dag, budget=12, max_combinations=500_000)
        reducers = {}
        for cell, amount in exact.allocation.items():
            if amount and cell in self.race_dag.cells:
                height = int(math.log2(amount)) if amount >= 2 else 0
                if height:
                    reducers[cell] = ("binary", height)
        sim = simulate_race_dag(self.race_dag, reducers)
        bound = makespan_upper_bound(self.race_dag, reducers)
        assert sim.completion_time <= bound + 1e-9

    def test_greedy_is_between_no_resource_and_exact(self):
        base = no_resource_solution(self.dag).makespan
        greedy = greedy_path_reuse(self.dag, budget=12)
        exact = exact_min_makespan(self.dag, budget=12, max_combinations=500_000)
        assert exact.makespan - 1e-9 <= greedy.makespan <= base + 1e-9


class TestMinMakespanMinResourceDuality:
    def test_round_trip_on_fork_join(self):
        dag = fork_join_dag(width=3, work=36, family="kway")
        budget = 9
        best = exact_min_makespan(dag, budget)
        # asking for that makespan back needs at most the original budget
        inverse = exact_min_resource(dag, best.makespan)
        assert inverse.budget_used <= budget + 1e-9
        # and the LP-based min-resource solution respects its bi-criteria bounds
        lp = solve_min_resource_bicriteria(dag, best.makespan, alpha=0.5)
        assert lp.makespan <= 2 * best.makespan + 1e-6

    def test_allocation_routability_matches_budget(self):
        dag = staged_fork_join_dag([2, 3], work=16, family="binary", seed=1)
        solution = exact_min_makespan(dag, budget=6, max_combinations=500_000)
        needed, _ = allocation_min_budget(dag, solution.allocation)
        assert needed <= 6 + 1e-9


class TestCrossValidation:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 400))
    def test_lp_lower_bound_never_exceeds_exact(self, seed):
        dag = layered_random_dag(2, 3, family="general", seed=seed, max_base=15)
        budget = 5
        solution = solve_min_makespan_bicriteria(dag, budget, alpha=0.5)
        exact = exact_min_makespan(dag, budget)
        assert solution.metadata["lp_makespan"] <= exact.makespan + 1e-6
        assert solution.makespan <= 2 * exact.makespan + 1e-6

    def test_sp_dp_agrees_with_enumeration_on_fork_join(self):
        dag = fork_join_dag(width=3, work=25, family="kway")
        tree = decompose_series_parallel(dag)
        assert tree is not None
        for budget in [0, 3, 6, 9]:
            assert sp_exact_min_makespan(tree, budget).makespan == pytest.approx(
                exact_min_makespan(dag, budget).makespan)

    def test_parallel_mm_formula_matches_optimiser(self):
        """The closed-form Parallel-MM running time equals the exact optimum of
        the corresponding tradeoff DAG when the budget is n^2 * 2^h spread as
        one height-h reducer per output cell."""
        n, h = 8, 2
        from repro.races.matmul import parallel_mm_tradeoff_dag

        dag = parallel_mm_tradeoff_dag(n, family="binary")
        allocation = {("Z", i, j): 2 ** h for i in range(n) for j in range(n)}
        assert dag.makespan_value(allocation) == parallel_mm_running_time(n, h)


class TestFailureInjection:
    def test_corrupted_flow_is_rejected(self):
        from repro.core.arcdag import node_to_arc_dag
        from repro.core.flow import FlowValidationError, ResourceFlow

        dag = fork_join_dag(width=2, work=16, family="binary")
        arc_dag, mapping = node_to_arc_dag(dag)
        flow = ResourceFlow(arc_dag, {mapping.job_arc["task_0"]: 4.0})  # no route to it
        with pytest.raises(FlowValidationError):
            flow.validate()

    def test_unroutable_allocation_detected(self):
        from repro.core.minflow import min_flow_with_lower_bounds, InfeasibleFlowError
        from repro.core.arcdag import ArcDAG

        dag = ArcDAG()
        dag.add_arc("s", "a", arc_id="e1")
        dag.add_arc("a", "t", arc_id="e2")
        with pytest.raises(InfeasibleFlowError):
            min_flow_with_lower_bounds(dag, {"e1": 5}, upper_bounds={"e1": 5, "e2": 4})

    def test_solver_rejects_invalid_dag(self):
        from repro.core.dag import TradeoffDAG

        dag = TradeoffDAG()
        dag.add_job("a")
        dag.add_job("b")
        dag.add_edge("a", "b")
        dag.add_edge("b", "a") if False else None
        # a DAG with two sources is normalised rather than rejected
        dag.add_job("c")
        dag.add_edge("c", "b")
        solution = solve_min_makespan_bicriteria(dag, budget=2, alpha=0.5)
        assert solution.makespan >= 0
