"""Tests for the single-criteria approximations (Theorems 3.9, 3.10, 3.16)."""

from __future__ import annotations


import pytest

from repro.core.binary_approx import (
    halve_binary_allocation,
    round_binary_resource_section33,
    solve_min_makespan_binary,
    solve_min_makespan_binary_improved,
)
from repro.core.duration import KWaySplitDuration, RecursiveBinarySplitDuration
from repro.core.exact import exact_min_makespan
from repro.core.kway_approx import reduce_kway_allocation, solve_min_makespan_kway
from repro.core.series_parallel import decompose_series_parallel, sp_exact_min_makespan
from repro.generators import fork_join_dag, get_workload


def _exact_oracle(dag, budget) -> float:
    """Exact optimum via the SP dynamic program when the DAG is series-parallel
    (fast even with many breakpoints), falling back to enumeration otherwise."""
    tree = decompose_series_parallel(dag)
    if tree is not None:
        return sp_exact_min_makespan(tree, int(budget)).makespan
    return exact_min_makespan(dag, budget).makespan


class TestAllocationRepairHelpers:
    def test_reduce_kway_large(self):
        fn = KWaySplitDuration(100)
        assert reduce_kway_allocation(10, 6.0, fn) == 5
        assert reduce_kway_allocation(9, 6.0, fn) == 4

    def test_reduce_kway_small_cases(self):
        fn = KWaySplitDuration(100)
        assert reduce_kway_allocation(1, 0.5, fn) == 0
        assert reduce_kway_allocation(2, 1.5, fn) == 2
        assert reduce_kway_allocation(3, 0.5, fn) == 0

    def test_reduce_kway_clipped_to_breakpoints(self):
        fn = KWaySplitDuration(9)  # breakpoints 0, 2, 3
        assert reduce_kway_allocation(100, 100, fn) == 3

    def test_halve_binary_snaps_to_power_of_two(self):
        fn = RecursiveBinarySplitDuration(64)
        assert halve_binary_allocation(16, fn) == 8
        assert halve_binary_allocation(10, fn) == 4
        assert halve_binary_allocation(3, fn) == 0  # 1.5 -> below the first breakpoint 2

    def test_section33_rounding_rule(self):
        fn = RecursiveBinarySplitDuration(1024)
        assert round_binary_resource_section33(0.5, fn) == 0
        assert round_binary_resource_section33(2.4, fn) == 2
        assert round_binary_resource_section33(3.2, fn) == 4
        assert round_binary_resource_section33(9.0, fn) == 8
        assert round_binary_resource_section33(13.0, fn) == 16

    def test_section33_rounding_never_exceeds_four_thirds(self):
        fn = RecursiveBinarySplitDuration(2 ** 14)
        for r in [1.6, 2.0, 3.1, 5.9, 6.1, 12.0, 25.0, 60.0]:
            rounded = round_binary_resource_section33(r, fn)
            assert rounded <= (4.0 / 3.0) * r + 1e-9

    def test_section33_capped_by_max_useful(self):
        fn = RecursiveBinarySplitDuration(16)
        assert round_binary_resource_section33(1000.0, fn) == fn.max_useful_resource()


class TestKWayApproximation:
    @pytest.mark.parametrize("name", ["small-layered-kway", "deep-chain-kway"])
    def test_five_approximation_vs_exact(self, name):
        workload = get_workload(name)
        dag = workload.build()
        solution = solve_min_makespan_kway(dag, workload.budget)
        exact_makespan = _exact_oracle(dag, workload.budget)
        assert solution.makespan <= 5 * exact_makespan + 1e-6
        # single-criteria: the routed resource stays within the budget
        assert solution.budget_used <= workload.budget + 1e-6

    def test_five_approximation_vs_lp(self):
        dag = fork_join_dag(width=6, work=49, family="kway")
        solution = solve_min_makespan_kway(dag, budget=18)
        assert solution.lower_bound is not None
        assert solution.makespan <= 5 * solution.lower_bound + 1e-6
        assert solution.budget_used <= 18 + 1e-6

    def test_zero_budget(self):
        dag = fork_join_dag(width=3, work=25, family="kway")
        solution = solve_min_makespan_kway(dag, budget=0)
        assert solution.makespan == pytest.approx(dag.makespan_value({}))


class TestBinaryApproximation:
    @pytest.mark.parametrize("name", ["small-layered-binary", "deep-chain-binary"])
    def test_four_approximation_vs_exact(self, name):
        workload = get_workload(name)
        dag = workload.build()
        solution = solve_min_makespan_binary(dag, workload.budget)
        exact_makespan = _exact_oracle(dag, workload.budget)
        assert solution.makespan <= 4 * exact_makespan + 1e-6
        assert solution.budget_used <= workload.budget + 1e-6

    @pytest.mark.parametrize("name", ["small-layered-binary", "deep-chain-binary"])
    def test_improved_bicriteria_guarantees(self, name):
        workload = get_workload(name)
        dag = workload.build()
        solution = solve_min_makespan_binary_improved(dag, workload.budget)
        lp_makespan = solution.metadata["lp_makespan"]
        lp_budget = solution.metadata["lp_budget_used"]
        assert solution.makespan <= (14.0 / 5.0) * lp_makespan + 1e-6 or lp_makespan == 0
        assert solution.budget_used <= (4.0 / 3.0) * max(lp_budget, 1e-12) + 1e-6 \
            or solution.budget_used <= workload.budget * (4.0 / 3.0) + 1e-6

    def test_improved_never_much_worse_than_plain(self):
        dag = fork_join_dag(width=4, work=64, family="binary")
        budget = 16
        plain = solve_min_makespan_binary(dag, budget)
        improved = solve_min_makespan_binary_improved(dag, budget)
        exact = exact_min_makespan(dag, budget)
        assert plain.makespan <= 4 * exact.makespan + 1e-6
        assert improved.makespan <= (14.0 / 5.0) * exact.makespan + 1e-6
