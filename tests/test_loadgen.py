"""Tests for the traffic-realism harness (repro.loadgen).

Schedule generation, Zipf skew, percentile math and report round-trips
are pure computation and tested exhaustively; one integration class runs
the full client against a live unix-socket server twice and pins the
acceptance contract: same seed -> identical schedules and identical
machine-independent metrics, with client/server accounting reconciled.
"""

from __future__ import annotations

import asyncio
import json
import math
import random

import pytest

from repro.engine import Portfolio, clear_caches, set_solution_store
from repro.loadgen import (
    ARRIVAL_PROCESSES,
    ChaosConfig,
    LoadReport,
    ZipfCells,
    build_report,
    build_schedule,
    percentile,
    run_load,
)
from repro.loadgen.chaos import FAULT_DISCONNECT, FAULT_MALFORMED, FAULT_OVERSIZE
from repro.loadgen.client import RequestOutcome
from repro.scenarios import Axis, ScenarioGrid
from repro.utils.validation import ValidationError


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def run_async(coro, timeout: float = 60.0):
    async def _bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(_bounded())


class TestArrivalSchedules:
    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_same_seed_same_schedule(self, process):
        a = build_schedule(process, rate=40.0, count=150, num_cells=12,
                           skew=1.2, seed=7)
        b = build_schedule(process, rate=40.0, count=150, num_cells=12,
                           skew=1.2, seed=7)
        c = build_schedule(process, rate=40.0, count=150, num_cells=12,
                           skew=1.2, seed=8)
        assert a.arrivals == b.arrivals
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()

    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_times_strictly_increasing(self, process):
        schedule = build_schedule(process, rate=100.0, count=300, seed=3)
        times = schedule.times()
        assert len(times) == 300
        assert all(earlier < later
                   for earlier, later in zip(times, times[1:]))
        assert all(0 <= a.cell < schedule.num_cells
                   for a in schedule.arrivals)

    def test_poisson_mean_rate_is_roughly_nominal(self):
        schedule = build_schedule("poisson", rate=200.0, count=4000, seed=1)
        realized = len(schedule) / schedule.duration()
        assert 0.9 * 200.0 < realized < 1.1 * 200.0

    def test_bursty_keeps_the_mean_rate(self):
        schedule = build_schedule("bursty", rate=200.0, count=4000, seed=1)
        realized = len(schedule) / schedule.duration()
        assert 0.85 * 200.0 < realized < 1.15 * 200.0

    def test_skew_never_perturbs_times(self):
        mild = build_schedule("poisson", rate=50.0, count=100, skew=0.2,
                              seed=5, num_cells=32)
        hot = build_schedule("poisson", rate=50.0, count=100, skew=2.0,
                             seed=5, num_cells=32)
        assert mild.times() == hot.times()
        assert mild.cells() != hot.cells()

    def test_skew_concentrates_traffic(self):
        uniform = build_schedule("poisson", rate=50.0, count=120,
                                 num_cells=64, skew=0.0, seed=11)
        skewed = build_schedule("poisson", rate=50.0, count=120,
                                num_cells=64, skew=1.5, seed=11)
        assert skewed.unique_cells() < uniform.unique_cells()
        assert skewed.dedup_ratio() > uniform.dedup_ratio()

    def test_signature_pinned_cross_machine(self):
        # random.Random is the Mersenne Twister, stable by contract: this
        # exact digest must reproduce on any platform/Python build.
        schedule = build_schedule("poisson", rate=10.0, count=8,
                                  num_cells=4, skew=1.0, seed=42)
        assert schedule.signature() == (
            "8fd7705b22fd3097f1caa979927262482ae82c4aaa84afcccc0762185ab45db9")

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_schedule("diurnal")
        with pytest.raises(ValidationError):
            build_schedule("poisson", rate=0.0)
        empty = build_schedule("poisson", count=0)
        assert len(empty) == 0 and empty.duration() == 0.0
        assert empty.dedup_ratio() == 0.0


class TestZipfCells:
    def test_hot_ranks_dominate(self):
        sampler = ZipfCells(16, skew=1.2)
        rng = random.Random(0)
        counts = [0] * 16
        for _ in range(8000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] > counts[4] > counts[15]
        assert counts[0] > 8000 / 16 * 3  # far above the uniform share

    def test_zero_skew_is_uniform(self):
        sampler = ZipfCells(8, skew=0.0)
        rng = random.Random(1)
        counts = [0] * 8
        for _ in range(16000):
            counts[sampler.sample(rng)] += 1
        assert max(counts) < 1.25 * min(counts)

    def test_single_cell_and_validation(self):
        assert ZipfCells(1).sample(random.Random(0)) == 0
        with pytest.raises(ValidationError):
            ZipfCells(0)
        with pytest.raises(ValidationError):
            ZipfCells(4, skew=-0.1)


class TestPercentile:
    def test_nearest_rank_on_known_samples(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 50) == 50
        assert percentile(samples, 95) == 95
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100
        assert percentile(samples, 0) == 1

    def test_order_independent_and_small_samples(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0
        assert percentile([7.5], 99) == 7.5
        assert percentile([3.0, 4.0], 50) == 3.0
        assert percentile([3.0, 4.0], 51) == 4.0

    def test_empty_and_bounds(self):
        assert math.isnan(percentile([], 50))
        with pytest.raises(ValidationError):
            percentile([1.0], 101)


class TestChaosConfig:
    def test_cadence_is_positional(self):
        chaos = ChaosConfig(malformed_every=3)
        hits = [i for i in range(12) if chaos.fault_for(i)]
        assert hits == [2, 5, 8, 11]
        assert chaos.fault_for(2) == FAULT_MALFORMED

    def test_precedence_on_overlap(self):
        chaos = ChaosConfig(malformed_every=4, oversize_every=2,
                            disconnect_every=2)
        assert chaos.fault_for(3) == FAULT_MALFORMED   # both match; fixed order
        assert chaos.fault_for(1) == FAULT_OVERSIZE    # oversize before disconnect
        assert chaos.fault_for(0) is None

    def test_inactive_and_validation(self):
        assert not ChaosConfig().active
        assert ChaosConfig().fault_for(123) is None
        assert ChaosConfig(disconnect_every=5).active
        with pytest.raises(ValidationError):
            ChaosConfig(malformed_every=-1)
        with pytest.raises(ValidationError):
            ChaosConfig(oversize_bytes=8)


def _fake_metrics(requests=0, deduped=0, store_hits=0, computed=0,
                  failed=0, cancelled=0, rejections=0, protocol_errors=0):
    return {
        "snapshot_schema": 1,
        "service": {"requests": requests, "batches": 0, "deduped": deduped,
                    "store_hits": store_hits, "computed": computed,
                    "failed": failed, "cancelled": cancelled, "shards": 0},
        "server": {"connections": 1, "requests": requests,
                   "protocol_errors": protocol_errors, "oversized_lines": 0,
                   "rejections": rejections, "slow_reader_drops": 0},
        "store": {"hits": store_hits, "misses": computed,
                  "writes": computed},
    }


def _outcomes(count, cells, latencies):
    return [RequestOutcome(index=i, cell=cells[i], kind="sweep", ok=True,
                           rejected=False, latency_s=latencies[i],
                           source="computed", key=f"k{cells[i]}")
            for i in range(count)]


class TestReport:
    def _report(self):
        schedule = build_schedule("poisson", rate=50.0, count=6,
                                  num_cells=4, skew=0.0, seed=2)
        cells = schedule.cells()
        unique = schedule.unique_cells()
        outcomes = _outcomes(6, cells, [0.010, 0.020, 0.030, 0.040,
                                        0.050, 0.060])
        before = _fake_metrics()
        after = _fake_metrics(requests=6, computed=unique,
                              deduped=6 - unique)
        return build_report(schedule, outcomes, before, after, wall_s=0.5)

    def test_round_trips_through_payload_json(self):
        report = self._report()
        clone = LoadReport.from_payload(json.loads(report.to_json()))
        assert clone.to_payload() == report.to_payload()
        assert clone.machine_independent() == report.machine_independent()
        assert clone.reconcile() == report.reconcile() == []

    def test_machine_independent_has_no_wall_clock(self):
        metrics = self._report().machine_independent()
        assert metrics["reconciled"] is True
        assert metrics["requests"] == 6
        assert metrics["cells_solved"] == metrics["unique_cells"]
        assert not any("wall" in name or "latency" in name or "_ms" in name
                       for name in metrics)

    def test_reconcile_flags_doctored_counters(self):
        report = self._report()
        report.server_delta["service"]["computed"] += 1
        problems = report.reconcile()
        assert problems and "tiers sum" in problems[0]
        assert report.machine_independent()["reconciled"] is False

    def test_reconcile_flags_missing_rejections(self):
        report = self._report()
        report.counts["rejected"] = 2
        report.counts["requests"] += 2
        assert any("rejections" in problem for problem in report.reconcile())

    def test_latency_percentiles_from_outcomes(self):
        report = self._report()
        assert report.latency_ms["p50"] == 30.0
        assert report.latency_ms["p99"] == 60.0
        assert report.latency_ms["max"] == 60.0
        assert report.counts["ok"] == 6

    def test_schema_guard(self):
        with pytest.raises(ValidationError):
            LoadReport.from_payload({"report_schema": 2})


GRID = ScenarioGrid(
    generators=({"generator": "fork-join",
                 "params": {"width": Axis([2, 3]), "work": 4}},),
    budget_rules=(("makespan-factor", 0.5), ("makespan-factor", 0.75)),
)


class TestLiveLoad:
    def _run_once(self, store_dir, seed=0):
        from repro.engine.async_service import AsyncSweepService
        from repro.serve import SweepServer

        schedule = build_schedule("poisson", rate=200.0, count=30,
                                  num_cells=GRID.size(), skew=1.2, seed=seed)

        async def body():
            service = AsyncSweepService(
                store=str(store_dir),
                portfolio=Portfolio(executor="thread", max_workers=2))
            socket_path = str(store_dir) + ".sock"
            async with SweepServer(service, unix_socket=socket_path):
                return await run_load(schedule, GRID,
                                      unix_socket=socket_path,
                                      connections=3, time_scale=0.0)
        return run_async(body())

    def test_same_seed_runs_reconcile_and_match(self, tmp_path):
        first = self._run_once(tmp_path / "a")
        clear_caches()
        set_solution_store(None)
        second = self._run_once(tmp_path / "b")
        assert first.reconcile() == []
        assert second.reconcile() == []
        assert first.machine_independent() == second.machine_independent()
        assert first.schedule["signature"] == second.schedule["signature"]
        assert first.counts["ok"] == 30
        assert first.cells_solved == first.schedule["unique_cells"]
        lat = first.latency_ms
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_cli_quick_run_exits_clean(self, tmp_path, capsys):
        from repro.loadgen.__main__ import main

        json_path = str(tmp_path / "report.json")
        assert main(["--quick", "--requests", "12", "--json", json_path]) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "reconciliation" in out
        payload = json.load(open(json_path, encoding="utf-8"))
        report = LoadReport.from_payload(payload)
        assert report.reconcile() == []
        assert report.counts["requests"] == 12
