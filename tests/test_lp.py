"""Tests for the LP relaxation (constraints 6-10 and the min-resource variant)."""

from __future__ import annotations

import math

import pytest

from repro.core.arcdag import ArcDAG, expand_to_two_tuples, node_to_arc_dag
from repro.core.duration import GeneralStepDuration
from repro.core.lp import (
    build_relaxed_arcs,
    linear_relaxed_duration,
    solve_min_makespan_lp,
    solve_min_resource_lp,
)


def simple_two_tuple_arcdag() -> ArcDAG:
    """Chain s -> a -> t where both arcs are fully expeditable."""
    dag = ArcDAG()
    dag.add_arc("s", "a", GeneralStepDuration([(0, 10), (5, 0)]), arc_id="e1")
    dag.add_arc("a", "t", GeneralStepDuration([(0, 6), (3, 0)]), arc_id="e2")
    return dag


class TestRelaxation:
    def test_relaxed_arcs_fields(self):
        dag = simple_two_tuple_arcdag()
        relaxed = build_relaxed_arcs(dag)
        assert relaxed["e1"].capped and relaxed["e1"].full_resource == 5
        assert relaxed["e2"].capped and relaxed["e2"].full_resource == 3

    def test_linear_duration_interpolates(self):
        dag = simple_two_tuple_arcdag()
        relaxed = build_relaxed_arcs(dag)
        assert linear_relaxed_duration(relaxed["e1"], 0) == 10
        assert linear_relaxed_duration(relaxed["e1"], 2.5) == 5
        assert linear_relaxed_duration(relaxed["e1"], 5) == 0
        assert linear_relaxed_duration(relaxed["e1"], 50) == 0  # clipped

    def test_infinite_base_time_replaced(self):
        dag = ArcDAG()
        dag.add_arc("s", "t", GeneralStepDuration([(0, math.inf), (1, 0)]), arc_id="e")
        relaxed = build_relaxed_arcs(dag)
        assert math.isfinite(relaxed["e"].base_time)

    def test_rejects_multi_tuple_arcs(self):
        dag = ArcDAG()
        dag.add_arc("s", "t", GeneralStepDuration([(0, 9), (1, 4), (2, 0)]))
        with pytest.raises(Exception):
            build_relaxed_arcs(dag)


class TestMinMakespanLP:
    def test_zero_budget_keeps_base_durations(self):
        dag = simple_two_tuple_arcdag()
        sol = solve_min_makespan_lp(dag, budget=0)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(16)
        assert sol.budget_used == pytest.approx(0)

    def test_large_budget_with_capped_arcs(self):
        """Constraint 6 caps the flow of two-tuple arcs at r_e, so on this
        hand-built chain (no uncapped bypass) at most 3 units traverse the
        second arc; the first arc then runs at 10 * (1 - 3/5) = 4."""
        dag = simple_two_tuple_arcdag()
        sol = solve_min_makespan_lp(dag, budget=5)
        assert sol.makespan == pytest.approx(4.0, abs=1e-6)
        assert sol.budget_used <= 5 + 1e-6

    def test_uncapped_bypass_enables_full_reuse(self):
        """The expanded DAGs of Section 3.1 always have uncapped single-tuple
        arcs in parallel, which is what lets the same units serve every job on
        a path; with such a bypass the makespan reaches 0."""
        dag = ArcDAG()
        dag.add_arc("s", "a", GeneralStepDuration([(0, 10), (5, 0)]), arc_id="e1")
        dag.add_arc("s", "a", GeneralStepDuration([(0, 0)]), arc_id="bypass1")
        dag.add_arc("a", "t", GeneralStepDuration([(0, 6), (3, 0)]), arc_id="e2")
        dag.add_arc("a", "t", GeneralStepDuration([(0, 0)]), arc_id="bypass2")
        sol = solve_min_makespan_lp(dag, budget=5)
        assert sol.makespan == pytest.approx(0.0, abs=1e-6)
        assert sol.budget_used <= 5 + 1e-6

    def test_fractional_budget_interpolates(self):
        dag = simple_two_tuple_arcdag()
        sol = solve_min_makespan_lp(dag, budget=2.5)
        # best split: route all 2.5 through both arcs: 10*(1-0.5) + 6*(1-2.5/3)
        expected = 10 * (1 - 0.5) + 6 * (1 - 2.5 / 3)
        assert sol.makespan == pytest.approx(expected, rel=1e-6)

    def test_lp_is_lower_bound_for_discrete_optimum(self, simple_chain_dag):
        from repro.core.exact import exact_min_makespan

        arc_dag, _ = node_to_arc_dag(simple_chain_dag)
        expansion = expand_to_two_tuples(arc_dag)
        budget = 8
        lp = solve_min_makespan_lp(expansion.arc_dag, budget)
        exact = exact_min_makespan(simple_chain_dag, budget)
        assert lp.makespan <= exact.makespan + 1e-9

    def test_budget_constraint_respected(self, diamond_dag):
        arc_dag, _ = node_to_arc_dag(diamond_dag)
        expansion = expand_to_two_tuples(arc_dag)
        lp = solve_min_makespan_lp(expansion.arc_dag, budget=4)
        assert lp.budget_used <= 4 + 1e-6

    def test_makespan_monotone_in_budget(self, diamond_dag):
        arc_dag, _ = node_to_arc_dag(diamond_dag)
        expansion = expand_to_two_tuples(arc_dag)
        previous = math.inf
        for budget in [0, 2, 4, 8, 16, 32]:
            lp = solve_min_makespan_lp(expansion.arc_dag, budget)
            assert lp.makespan <= previous + 1e-9
            previous = lp.makespan


class TestMinResourceLP:
    def test_loose_target_needs_no_resource(self):
        dag = simple_two_tuple_arcdag()
        sol = solve_min_resource_lp(dag, target_makespan=100)
        assert sol.budget_used == pytest.approx(0)

    def test_tight_target_needs_resource(self):
        dag = simple_two_tuple_arcdag()
        sol = solve_min_resource_lp(dag, target_makespan=8)
        assert sol.budget_used > 0
        assert sol.makespan <= 8 + 1e-6

    def test_impossible_target_infeasible(self):
        dag = ArcDAG()
        dag.add_arc("s", "t", GeneralStepDuration([(0, 5)]), arc_id="fixed")
        sol = solve_min_resource_lp(dag, target_makespan=1)
        assert sol.status == "infeasible"

    def test_resource_monotone_in_target(self):
        dag = simple_two_tuple_arcdag()
        previous = -1.0
        for target in [16, 12, 8, 4]:
            sol = solve_min_resource_lp(dag, target_makespan=target)
            assert sol.status == "optimal"
            assert sol.budget_used >= previous - 1e-9
            previous = sol.budget_used
        # the capped arcs cannot push the makespan below 4 on this chain
        assert solve_min_resource_lp(dag, target_makespan=0).status == "infeasible"
