"""Tests for the Dinic max-flow solver (cross-checked against networkx)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.maxflow import INFINITY, DinicMaxFlow


class TestDinicBasics:
    def test_single_edge(self):
        flow = DinicMaxFlow()
        h = flow.add_edge("s", "t", 5)
        assert flow.max_flow("s", "t") == 5
        assert flow.flow_on(h) == 5

    def test_two_disjoint_paths(self):
        flow = DinicMaxFlow()
        flow.add_edge("s", "a", 3)
        flow.add_edge("a", "t", 3)
        flow.add_edge("s", "b", 4)
        flow.add_edge("b", "t", 2)
        assert flow.max_flow("s", "t") == 5

    def test_bottleneck(self):
        flow = DinicMaxFlow()
        flow.add_edge("s", "a", 10)
        flow.add_edge("a", "b", 1)
        flow.add_edge("b", "t", 10)
        assert flow.max_flow("s", "t") == 1

    def test_infinite_capacity_edges(self):
        flow = DinicMaxFlow()
        h = flow.add_edge("s", "a", INFINITY)
        flow.add_edge("a", "t", 7)
        assert flow.max_flow("s", "t") == 7
        assert flow.flow_on(h) == 7

    def test_limit_parameter(self):
        flow = DinicMaxFlow()
        flow.add_edge("s", "t", 10)
        assert flow.max_flow("s", "t", limit=4) == 4
        # residual still admits more flow
        assert flow.max_flow("s", "t") == 6

    def test_source_equals_sink(self):
        flow = DinicMaxFlow()
        flow.add_edge("s", "t", 3)
        assert flow.max_flow("s", "s") == 0

    def test_disconnected(self):
        flow = DinicMaxFlow()
        flow.add_edge("s", "a", 3)
        flow.add_edge("b", "t", 3)
        assert flow.max_flow("s", "t") == 0

    def test_negative_capacity_rejected(self):
        flow = DinicMaxFlow()
        with pytest.raises(ValueError):
            flow.add_edge("s", "t", -1)

    def test_disable_edge(self):
        flow = DinicMaxFlow()
        h = flow.add_edge("s", "t", 5)
        flow.disable_edge(h)
        assert flow.max_flow("s", "t") == 0

    def test_incremental_calls_accumulate(self):
        flow = DinicMaxFlow()
        flow.add_edge("s", "a", 2)
        flow.add_edge("a", "t", 2)
        first = flow.max_flow("s", "t")
        second = flow.max_flow("s", "t")
        assert first == 2
        assert second == 0


@st.composite
def random_flow_networks(draw):
    n = draw(st.integers(3, 8))
    edges = []
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if draw(st.booleans()):
                cap = draw(st.integers(0, 12))
                edges.append((u, v, cap))
    return n, edges


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(random_flow_networks())
    def test_matches_networkx_max_flow(self, network):
        n, edges = network
        dinic = DinicMaxFlow()
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u, v, cap in edges:
            dinic.add_edge(u, v, cap)
            if g.has_edge(u, v):
                g[u][v]["capacity"] += cap
            else:
                g.add_edge(u, v, capacity=cap)
        ours = dinic.max_flow(0, n - 1)
        theirs = nx.maximum_flow_value(g, 0, n - 1) if g.number_of_edges() else 0
        assert ours == pytest.approx(theirs)

    @settings(max_examples=25, deadline=None)
    @given(random_flow_networks())
    def test_flow_decomposition_is_consistent(self, network):
        """Per-edge flows respect capacities and conservation."""
        n, edges = network
        dinic = DinicMaxFlow()
        handles = []
        for u, v, cap in edges:
            handles.append((u, v, cap, dinic.add_edge(u, v, cap)))
        value = dinic.max_flow(0, n - 1)
        balance = {v: 0.0 for v in range(n)}
        for u, v, cap, h in handles:
            f = dinic.flow_on(h)
            assert -1e-9 <= f <= cap + 1e-9
            balance[u] -= f
            balance[v] += f
        for v in range(1, n - 1):
            assert balance[v] == pytest.approx(0.0)
        assert balance[n - 1] == pytest.approx(value)
        assert balance[0] == pytest.approx(-value)
