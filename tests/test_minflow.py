"""Tests for minimum flow with lower bounds (LP 11-13 integral step)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arcdag import ArcDAG
from repro.core.duration import ConstantDuration
from repro.core.minflow import (
    InfeasibleFlowError,
    allocation_min_budget,
    min_flow_with_lower_bounds,
)
from repro.core.dag import TradeoffDAG
from repro.core.duration import RecursiveBinarySplitDuration


def build_chain_arcdag(n_arcs: int) -> ArcDAG:
    dag = ArcDAG()
    previous = dag.source
    for i in range(n_arcs - 1):
        nxt = f"v{i}"
        dag.add_arc(previous, nxt, ConstantDuration(0.0), arc_id=f"e{i}")
        previous = nxt
    dag.add_arc(previous, dag.sink, ConstantDuration(0.0), arc_id=f"e{n_arcs - 1}")
    return dag


class TestMinFlowChain:
    def test_chain_reuses_single_bundle(self):
        """On a chain the min flow equals the largest lower bound (perfect reuse)."""
        dag = build_chain_arcdag(4)
        result = min_flow_with_lower_bounds(dag, {"e0": 3, "e1": 1, "e2": 5, "e3": 2})
        assert result.value == 5
        for arc_id in ["e0", "e1", "e2", "e3"]:
            assert result.flow[arc_id] >= {"e0": 3, "e1": 1, "e2": 5, "e3": 2}[arc_id]

    def test_no_lower_bounds_gives_zero_flow(self):
        dag = build_chain_arcdag(3)
        result = min_flow_with_lower_bounds(dag, {})
        assert result.value == 0

    def test_flow_is_integral_for_integral_bounds(self):
        dag = build_chain_arcdag(5)
        result = min_flow_with_lower_bounds(dag, {"e1": 4, "e3": 7})
        assert result.value == 7
        assert all(abs(v - round(v)) < 1e-9 for v in result.flow.values())


class TestMinFlowParallel:
    def test_parallel_branches_sum(self):
        """Parallel lower bounds cannot share units: the min flow is their sum."""
        dag = ArcDAG()
        dag.add_arc("s", "a", arc_id="left1")
        dag.add_arc("a", "t", arc_id="left2")
        dag.add_arc("s", "b", arc_id="right1")
        dag.add_arc("b", "t", arc_id="right2")
        result = min_flow_with_lower_bounds(dag, {"left1": 3, "right1": 4})
        assert result.value == 7

    def test_series_within_branch_still_reuses(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", arc_id="l1")
        dag.add_arc("a", "b", arc_id="l2")
        dag.add_arc("b", "t", arc_id="l3")
        dag.add_arc("s", "c", arc_id="r1")
        dag.add_arc("c", "t", arc_id="r2")
        result = min_flow_with_lower_bounds(dag, {"l1": 2, "l2": 6, "l3": 1, "r2": 3})
        assert result.value == 6 + 3

    def test_upper_bounds_respected(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", arc_id="e1")
        dag.add_arc("a", "t", arc_id="e2")
        with pytest.raises(InfeasibleFlowError):
            min_flow_with_lower_bounds(dag, {"e1": 5}, upper_bounds={"e2": 3})

    def test_upper_equal_lower_is_feasible(self):
        dag = ArcDAG()
        dag.add_arc("s", "a", arc_id="e1")
        dag.add_arc("a", "t", arc_id="e2")
        result = min_flow_with_lower_bounds(dag, {"e1": 5}, upper_bounds={"e1": 5})
        assert result.value == 5

    def test_result_as_resource_flow_validates(self):
        dag = build_chain_arcdag(3)
        result = min_flow_with_lower_bounds(dag, {"e0": 2})
        rf = result.as_resource_flow(dag)
        assert rf.budget_used() == 2


class TestAllocationMinBudget:
    def test_chain_allocation(self, simple_chain_dag):
        budget, job_flow = allocation_min_budget(simple_chain_dag, {"x": 8, "y": 6})
        assert budget == 8  # reuse over the path: max of the two
        assert job_flow["x"] >= 8
        assert job_flow["y"] >= 6

    def test_parallel_allocation(self, diamond_dag):
        budget, _ = allocation_min_budget(diamond_dag, {"a1": 4, "b1": 8})
        assert budget == 12  # parallel branches cannot share
        budget2, _ = allocation_min_budget(diamond_dag, {"a1": 4, "a2": 9})
        assert budget2 == 9  # serial jobs on the same branch can

    def test_empty_allocation(self, diamond_dag):
        budget, _ = allocation_min_budget(diamond_dag, {})
        assert budget == 0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 10), min_size=2, max_size=6))
    def test_chain_property_budget_is_max(self, works):
        """On a pure chain the minimum budget to realise any allocation is its max."""
        dag = TradeoffDAG()
        dag.add_job("source")
        previous = "source"
        allocation = {}
        for idx, amount in enumerate(works):
            name = f"job{idx}"
            dag.add_job(name, RecursiveBinarySplitDuration(64))
            dag.add_edge(previous, name)
            allocation[name] = amount
            previous = name
        dag.add_job("sink")
        dag.add_edge(previous, "sink")
        budget, _ = allocation_min_budget(dag, allocation)
        assert budget == max(works) if works else 0
