"""Tests for the fork-join program model and the race detector (Section 1)."""

from __future__ import annotations


from repro.races.detector import find_data_races, find_determinacy_races, racy_cells
from repro.races.program import (
    ParallelBlock,
    Program,
    Read,
    SerialBlock,
    Update,
    Write,
    logically_parallel,
)
from repro.races.programs import (
    figure1_counter_program,
    global_sum_program,
    histogram_program,
    sparse_accumulate_program,
)


class TestProgramModel:
    def test_operations_and_labels(self):
        program = Program(SerialBlock([
            Write(("x",), ()),
            ParallelBlock([Update(("x",), ()), Update(("x",), ())]),
        ]))
        ops = program.operations()
        assert len(ops) == 3
        assert ops[0].label == (("S", 0),)
        assert ops[1].label == (("S", 1), ("P", 0))
        assert ops[2].label == (("S", 1), ("P", 1))

    def test_logical_parallelism(self):
        program = Program(SerialBlock([
            Write(("x",), ()),
            ParallelBlock([Update(("x",), ()), Update(("x",), ())]),
        ]))
        ops = program.operations()
        assert not logically_parallel(ops[0], ops[1])  # serial before parallel block
        assert logically_parallel(ops[1], ops[2])      # two children of a parallel block
        assert not logically_parallel(ops[1], ops[1])

    def test_cells_and_update_counts(self):
        program = global_sum_program(5)
        assert ("total",) in program.cells()
        counts = program.updates_per_cell()
        assert counts[("total",)] == 6  # one init write + five updates

    def test_nested_serial_children_not_parallel(self):
        program = Program(SerialBlock([
            SerialBlock([Update(("x",), ()), Update(("x",), ())]),
        ]))
        ops = program.operations()
        assert not logically_parallel(ops[0], ops[1])


class TestRaceDetection:
    def test_figure1_counter_has_one_data_race(self):
        program = figure1_counter_program()
        data = find_data_races(program)
        assert len(data) == 1
        assert data[0].cell == ("x",)
        assert data[0].reducible  # both accesses are commutative updates

    def test_initial_write_not_racy(self):
        program = figure1_counter_program()
        races = find_determinacy_races(program)
        # only the two parallel updates conflict; the serial init write does not
        assert all(r.first.operation.writes_target and r.second.operation.writes_target
                   for r in races if r.kind == "data")

    def test_global_sum_race_count(self):
        n = 6
        program = global_sum_program(n)
        data = find_data_races(program)
        assert len(data) == n * (n - 1) // 2

    def test_histogram_races_grouped_by_bucket(self):
        program = histogram_program(12, 3, seed=1)
        cells = racy_cells(program)
        assert all(cell[0] == "hist" for cell in cells)

    def test_read_only_program_has_no_races(self):
        program = Program(ParallelBlock([Read(("x",), ()), Read(("x",), ())]))
        assert find_determinacy_races(program) == []

    def test_determinacy_race_with_single_writer(self):
        program = Program(ParallelBlock([Read(("x",), ()), Update(("x",), ())]))
        races = find_determinacy_races(program)
        assert len(races) == 1
        assert races[0].kind == "determinacy"
        assert find_data_races(program) == []

    def test_serialized_updates_do_not_race(self):
        program = Program(SerialBlock([Update(("x",), ()), Update(("x",), ())]))
        assert find_determinacy_races(program) == []

    def test_sparse_accumulate_races_are_reducible(self):
        program = sparse_accumulate_program(3, 4, density=0.9, seed=2)
        for race in find_data_races(program):
            assert race.reducible
