"""Smoke tests for the public package surface (imports, __all__, docstrings)."""

from __future__ import annotations

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.duration",
    "repro.core.dag",
    "repro.core.arcdag",
    "repro.core.flow",
    "repro.core.maxflow",
    "repro.core.minflow",
    "repro.core.lp",
    "repro.core.rounding",
    "repro.core.bicriteria",
    "repro.core.kway_approx",
    "repro.core.binary_approx",
    "repro.core.series_parallel",
    "repro.core.exact",
    "repro.core.baselines",
    "repro.core.problem",
    "repro.engine",
    "repro.engine.fingerprint",
    "repro.engine.structure",
    "repro.engine.registry",
    "repro.engine.solvers",
    "repro.engine.certify",
    "repro.engine.core",
    "repro.engine.cache",
    "repro.engine.portfolio",
    "repro.engine.service",
    "repro.engine.store",
    "repro.engine.async_service",
    "repro.serve",
    "repro.races",
    "repro.races.program",
    "repro.races.detector",
    "repro.races.racedag",
    "repro.races.reducer",
    "repro.races.simulator",
    "repro.races.matmul",
    "repro.races.programs",
    "repro.hardness",
    "repro.hardness.sat",
    "repro.hardness.gadgets_general",
    "repro.hardness.gadgets_splitting",
    "repro.hardness.minresource_chain",
    "repro.hardness.partition",
    "repro.hardness.treewidth",
    "repro.hardness.matching3d",
    "repro.hardness.verify",
    "repro.generators",
    "repro.scenarios",
    "repro.scenarios.registry",
    "repro.scenarios.spec",
    "repro.scenarios.adversarial",
    "repro.analysis",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


def test_version_exposed():
    assert repro.__version__ == "1.10.0"


def test_top_level_reexports_core_api():
    for name in ["TradeoffDAG", "GeneralStepDuration", "solve_min_makespan_bicriteria",
                 "sp_exact_min_makespan", "exact_min_makespan", "ResourceFlow"]:
        assert hasattr(repro, name)
        assert name in repro.__all__


def test_top_level_reexports_engine_api():
    for name in ["solve", "SolveReport", "SolveLimits", "Portfolio", "PortfolioReport",
                 "register_solver", "solver_ids", "exact_reference", "dag_fingerprint",
                 "SweepService", "AsyncSweepService", "AsyncSweepStats", "SolutionStore"]:
        assert hasattr(repro, name)
        assert name in repro.__all__


def test_engine_registry_covers_all_families():
    ids = set(repro.solver_ids())
    assert {"exact-enumeration", "series-parallel-dp", "bicriteria-lp",
            "kway-5approx", "binary-4approx", "binary-improved",
            "greedy-path-reuse"} <= ids


@pytest.mark.parametrize("module_name", ["repro.core", "repro.races", "repro.hardness",
                                         "repro.generators", "repro.analysis",
                                         "repro.engine"])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"


def test_public_functions_have_docstrings():
    import inspect

    for module_name in ["repro.core.bicriteria", "repro.core.series_parallel",
                        "repro.core.exact", "repro.races.reducer",
                        "repro.hardness.gadgets_general"]:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{module_name}.{name} is missing a docstring"
