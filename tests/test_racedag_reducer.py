"""Tests for race-DAG construction, reducer simulators and Observation 1.1."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.races.matmul import (
    parallel_mm_program,
    parallel_mm_race_dag,
    parallel_mm_running_time,
    parallel_mm_space_used,
    parallel_mm_tradeoff_dag,
)
from repro.races.programs import global_sum_program, histogram_program
from repro.races.racedag import RaceDAG, race_dag_from_program, to_tradeoff_dag
from repro.races.reducer import (
    binary_reducer_formula,
    distribute_updates,
    kway_reducer_formula,
    simulate_binary_reducer,
    simulate_kway_reducer,
    simulate_serialized_updates,
)
from repro.races.simulator import makespan_upper_bound, simulate_race_dag


class TestRaceDAG:
    def test_work_counts_updates(self):
        dag = RaceDAG()
        dag.add_dependency("a", "c")
        dag.add_dependency("b", "c")
        dag.add_dependency("a", "c")
        dag.add_external_update("c", 2)
        assert dag.work("c") == 5
        assert dag.work("a") == 0

    def test_cycle_rejected(self):
        dag = RaceDAG()
        dag.add_dependency("a", "b")
        dag.add_dependency("b", "a")
        with pytest.raises(Exception):
            dag.validate()

    def test_from_global_sum_program(self):
        program = global_sum_program(8)
        dag = race_dag_from_program(program)
        assert dag.work(("total",)) == 9  # 8 updates + 1 initialising write

    def test_from_histogram_program(self):
        program = histogram_program(20, 4, seed=0)
        dag = race_dag_from_program(program)
        total_work = sum(dag.works()[("hist", b)] for b in range(4))
        assert total_work == 20 + 4  # items + initialising writes

    def test_to_tradeoff_dag_families(self):
        dag = RaceDAG()
        dag.add_dependency("x", "z")
        dag.add_dependency("y", "z")
        for family in ("binary", "kway", "constant"):
            tdag = to_tradeoff_dag(dag, family=family)
            tdag.validate()
            assert tdag.duration_function("z").base_duration == 2

    def test_unknown_family_rejected(self):
        dag = RaceDAG()
        dag.add_dependency("x", "z")
        with pytest.raises(Exception):
            to_tradeoff_dag(dag, family="nope")

    def test_serialized_makespan(self):
        dag = RaceDAG()
        dag.add_dependency("a", "b")
        dag.add_dependency("a", "c")
        dag.add_dependency("b", "d")
        dag.add_dependency("c", "d")
        # works: b=1, c=1, d=2 -> longest path 1 + 2 = 3
        assert dag.makespan_serialized() == 3


class TestReducers:
    def test_distribute_updates(self):
        assert distribute_updates(10, 4) == [3, 3, 2, 2]
        assert distribute_updates(0, 3) == [0, 0, 0]
        assert sum(distribute_updates(17, 5)) == 17

    def test_serialized(self):
        result = simulate_serialized_updates(12)
        assert result.completion_time == 12
        assert result.space_used == 0

    @pytest.mark.parametrize("n,h", [(8, 1), (8, 2), (8, 3), (100, 3), (64, 6), (1, 2), (7, 2)])
    def test_binary_reducer_matches_formula(self, n, h):
        sim = simulate_binary_reducer(n, h)
        assert sim.completion_time == binary_reducer_formula(n, h)

    def test_binary_reducer_space(self):
        sim = simulate_binary_reducer(32, 3)
        assert sim.space_used == 6  # 2h cells with the fold-into-survivor trick

    def test_binary_reducer_zero_updates(self):
        assert simulate_binary_reducer(0, 3).completion_time == 0

    @pytest.mark.parametrize("n,k", [(36, 6), (100, 5), (12, 4), (9, 3)])
    def test_kway_reducer_equals_formula_when_divisible(self, n, k):
        assert n % k == 0
        sim = simulate_kway_reducer(n, k)
        assert sim.completion_time == kway_reducer_formula(n, k)

    @given(st.integers(1, 300), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_kway_simulation_never_exceeds_formula(self, n, k):
        sim = simulate_kway_reducer(n, k)
        assert sim.completion_time <= kway_reducer_formula(n, k)

    @given(st.integers(1, 300), st.integers(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_binary_simulation_never_exceeds_formula(self, n, h):
        sim = simulate_binary_reducer(n, h)
        assert sim.completion_time <= binary_reducer_formula(n, h)

    def test_processor_limit_degrades_gracefully(self):
        unlimited = simulate_binary_reducer(64, 3)
        limited = simulate_binary_reducer(64, 3, processors=2)
        assert limited.completion_time >= unlimited.completion_time

    def test_speedup_grows_with_height(self):
        """More space -> (weakly) faster reduction, up to the useful height."""
        n = 1024
        previous = math.inf
        for h in range(0, 9):
            time = simulate_binary_reducer(n, h).completion_time
            assert time <= previous
            previous = time


class TestObservation11:
    def test_simulation_never_exceeds_bound(self):
        race_dag = parallel_mm_race_dag(6)
        for reducers in [None,
                         {("Z", i, j): ("binary", 1) for i in range(6) for j in range(6)},
                         {("Z", i, j): ("kway", 3) for i in range(6) for j in range(6)}]:
            sim = simulate_race_dag(race_dag, reducers)
            bound = makespan_upper_bound(race_dag, reducers)
            assert sim.completion_time <= bound + 1e-9

    def test_histogram_simulation(self):
        program = histogram_program(30, 5, seed=3)
        race_dag = race_dag_from_program(program)
        sim = simulate_race_dag(race_dag)
        bound = makespan_upper_bound(race_dag)
        assert sim.completion_time <= bound + 1e-9
        assert sim.total_updates == sum(race_dag.works().values())


class TestParallelMM:
    def test_program_size(self):
        program = parallel_mm_program(3)
        # n^2 init writes + n^3 updates
        assert program.num_operations() == 9 + 27

    def test_race_dag_work(self):
        dag = parallel_mm_race_dag(5)
        for i in range(5):
            for j in range(5):
                assert dag.work(("Z", i, j)) == 5

    def test_tradeoff_dag_makespan_drops_with_height(self):
        n = 8
        tdag = parallel_mm_tradeoff_dag(n, family="binary")
        no_res = tdag.makespan_value({})
        assert no_res == n
        with_res = tdag.makespan_value({("Z", i, j): 4 for i in range(n) for j in range(n)})
        assert with_res == parallel_mm_running_time(n, 2)

    def test_running_time_formula_theta_shape(self):
        """Running time drops from n to Theta(log n) as h grows (Section 1)."""
        n = 1024
        assert parallel_mm_running_time(n, 0) == n
        best_h = int(math.log2(n))
        assert parallel_mm_running_time(n, best_h) <= 2 * math.log2(n) + 2

    def test_space_accounting(self):
        assert parallel_mm_space_used(10, 0) == 0
        assert parallel_mm_space_used(10, 3) == 100 * 8
