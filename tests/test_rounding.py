"""Tests for the alpha-threshold rounding (Section 3.1)."""

from __future__ import annotations

import pytest

from repro.core.arcdag import ArcDAG
from repro.core.duration import GeneralStepDuration
from repro.core.lp import solve_min_makespan_lp
from repro.core.rounding import round_lp_solution
from repro.utils.validation import ValidationError


def build_dag() -> ArcDAG:
    dag = ArcDAG()
    dag.add_arc("s", "a", GeneralStepDuration([(0, 10), (5, 0)]), arc_id="improvable")
    dag.add_arc("a", "t", GeneralStepDuration([(0, 4)]), arc_id="fixed")
    return dag


class TestRounding:
    def test_alpha_must_be_in_open_interval(self):
        dag = build_dag()
        lp = solve_min_makespan_lp(dag, budget=5)
        for bad in [0.0, 1.0, -0.5, 2.0]:
            with pytest.raises(ValidationError):
                round_lp_solution(dag, lp, bad)

    def test_fully_expedited_arc_rounds_down(self):
        dag = build_dag()
        lp = solve_min_makespan_lp(dag, budget=5)
        rounded = round_lp_solution(dag, lp, alpha=0.5)
        assert rounded.lower_bounds["improvable"] == 5
        assert rounded.rounded_durations["improvable"] == 0
        assert rounded.lower_bounds["fixed"] == 0
        assert rounded.rounded_durations["fixed"] == 4

    def test_unexpedited_arc_rounds_up(self):
        dag = build_dag()
        lp = solve_min_makespan_lp(dag, budget=0)
        rounded = round_lp_solution(dag, lp, alpha=0.5)
        assert rounded.lower_bounds["improvable"] == 0
        assert rounded.rounded_durations["improvable"] == 10

    def test_threshold_behaviour(self):
        """An LP duration just above / below alpha * t(0) flips the decision."""
        dag = build_dag()
        # budget 2.5 -> LP duration on the improvable arc is 10 * (1 - 0.5) = 5
        lp = solve_min_makespan_lp(dag, budget=2.5)
        assert lp.relaxed_duration("improvable") == pytest.approx(5.0)
        low_alpha = round_lp_solution(dag, lp, alpha=0.4)   # 5 >= 4 -> round up
        high_alpha = round_lp_solution(dag, lp, alpha=0.6)  # 5 < 6 -> round down
        assert low_alpha.lower_bounds["improvable"] == 0
        assert high_alpha.lower_bounds["improvable"] == 5

    def test_rounded_duration_bounded_by_alpha_factor(self):
        """After rounding, every arc's duration is at most (1/alpha) * LP duration
        whenever the LP duration is positive."""
        dag = build_dag()
        for budget in [0, 1, 2, 3, 4, 5]:
            lp = solve_min_makespan_lp(dag, budget=budget)
            for alpha in [0.25, 0.5, 0.75]:
                rounded = round_lp_solution(dag, lp, alpha)
                for arc_id, duration in rounded.rounded_durations.items():
                    lp_duration = lp.relaxed_duration(arc_id)
                    if lp_duration > 0:
                        assert duration <= lp_duration / alpha + 1e-9

    def test_requirement_bounded_by_one_minus_alpha_factor(self):
        """Every committed requirement is at most 1/(1-alpha) times the LP flow."""
        dag = build_dag()
        for budget in [1, 2, 3, 4, 5]:
            lp = solve_min_makespan_lp(dag, budget=budget)
            for alpha in [0.25, 0.5, 0.75]:
                rounded = round_lp_solution(dag, lp, alpha)
                for arc_id, requirement in rounded.lower_bounds.items():
                    if requirement > 0:
                        assert requirement <= lp.flows[arc_id] / (1 - alpha) + 1e-9

    def test_total_requirement_and_expedited_arcs(self):
        dag = build_dag()
        lp = solve_min_makespan_lp(dag, budget=5)
        rounded = round_lp_solution(dag, lp, alpha=0.5)
        assert rounded.total_requirement() == 5
        assert list(rounded.expedited_arcs()) == ["improvable"]

    def test_infeasible_lp_rejected(self):
        from repro.core.lp import solve_min_resource_lp
        dag = ArcDAG()
        dag.add_arc("s", "t", GeneralStepDuration([(0, 5)]), arc_id="fixed")
        lp = solve_min_resource_lp(dag, target_makespan=1)
        with pytest.raises(ValidationError):
            round_lp_solution(dag, lp, 0.5)
