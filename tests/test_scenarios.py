"""Tests for the declarative scenario subsystem (registry, specs, grids,
adversarial generators, spec fingerprints and the workload catalog)."""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro import request_key, spec_fingerprint
from repro.engine.core import clear_caches
from repro.engine.fingerprint import (
    cached_spec_fingerprint,
    record_spec_fingerprint,
    spec_alias_key,
)
from repro.generators import get_workload, workload_names
from repro.hardness.partition import PartitionInstance
from repro.scenarios import (
    Axis,
    ScenarioGrid,
    ScenarioSpec,
    arc_dag_to_tradeoff_dag,
    generator_ids,
    generator_specs,
    get_generator,
    materialization_info,
    minresource_chain_dag,
    partition_gadget_dag,
    register_generator,
    reset_materialization_counters,
    unregister_generator,
)
from repro.scenarios.adversarial import partition_values
from repro.utils.validation import ValidationError


class TestRegistry:
    def test_builtin_generators_registered(self):
        ids = generator_ids()
        for expected in ["fork-join", "staged-fork-join", "layered-random",
                         "chain", "sp-random", "sp-balanced",
                         "adversarial-partition",
                         "adversarial-minresource-chain"]:
            assert expected in ids

    def test_adversarial_flag(self):
        flags = {spec.generator_id: spec.adversarial
                 for spec in generator_specs()}
        assert flags["adversarial-partition"]
        assert not flags["fork-join"]

    def test_unknown_generator(self):
        with pytest.raises(ValidationError, match="unknown generator"):
            get_generator("does-not-exist")

    def test_register_and_unregister(self):
        @register_generator("test-tiny", summary="one-job dag",
                            families=("binary",),
                            params_schema={"work": {"type": "int",
                                                    "default": 8}})
        def _build(work):
            from repro.core.dag import TradeoffDAG
            from repro.core.duration import RecursiveBinarySplitDuration

            dag = TradeoffDAG()
            dag.add_job("s")
            dag.add_job("x", RecursiveBinarySplitDuration(work))
            dag.add_job("t")
            dag.add_edge("s", "x")
            dag.add_edge("x", "t")
            return dag

        try:
            with pytest.raises(ValidationError, match="already registered"):
                register_generator("test-tiny", summary="dup",
                                   families=("binary",),
                                   params_schema={})(lambda: None)
            spec = ScenarioSpec("test-tiny", budget_rule=("const", 4))
            assert spec.params == {"work": 8}
            assert spec.materialize().dag.num_jobs == 3
        finally:
            assert unregister_generator("test-tiny") is not None
        assert unregister_generator("test-tiny") is None

    def test_param_validation(self):
        gen = get_generator("fork-join")
        with pytest.raises(ValidationError, match="needs param"):
            gen.validate_params({"width": 4})  # work missing
        with pytest.raises(ValidationError, match="does not accept"):
            gen.validate_params({"width": 4, "work": 8, "bogus": 1})
        with pytest.raises(ValidationError, match="must be int"):
            gen.validate_params({"width": "wide", "work": 8})
        with pytest.raises(ValidationError, match="must be int"):
            gen.validate_params({"width": True, "work": 8})  # bools are not ints
        with pytest.raises(ValidationError, match="must be one of"):
            gen.validate_params({"width": 4, "work": 8, "family": "exotic"})
        with pytest.raises(ValidationError, match="seeds through the spec"):
            get_generator("chain").validate_params({"lengths": [4], "seed": 3})

    def test_seq_params_canonicalised(self):
        gen = get_generator("chain")
        assert gen.validate_params({"lengths": (8, 16)})["lengths"] == [8, 16]

    def test_unseeded_generator_rejects_seed(self):
        with pytest.raises(ValidationError, match="unseeded"):
            get_generator("fork-join").build_dag({"width": 2, "work": 8},
                                                 seed=3)


class TestScenarioSpec:
    def test_canonical_params_and_digest(self):
        a = ScenarioSpec("fork-join", {"work": 16, "width": 4},
                         budget_rule=("const", 8))
        b = ScenarioSpec("fork-join", {"width": 4, "work": 16},
                         budget_rule=["const", 8.0])
        assert a == b
        assert a.cell_digest() == b.cell_digest()
        assert a.params == {"family": "binary", "width": 4, "work": 16}

    def test_payload_round_trip(self):
        spec = ScenarioSpec("layered-random",
                            {"num_layers": 2, "jobs_per_layer": 3}, seed=5,
                            objective="min_resource",
                            budget_rule=("makespan-factor", 0.5))
        clone = ScenarioSpec.from_payload(spec.to_payload())
        assert clone == spec
        assert clone.cell_digest() == spec.cell_digest()

    def test_payload_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown fields"):
            ScenarioSpec.from_payload({"generator": "chain",
                                       "params": {"lengths": [4]},
                                       "dag": "smuggled"})

    def test_bad_budget_rule_and_objective(self):
        with pytest.raises(ValidationError, match="unknown budget rule"):
            ScenarioSpec("fork-join", {"width": 2, "work": 8},
                         budget_rule=("triple", 1))
        with pytest.raises(ValidationError, match="unknown objective"):
            ScenarioSpec("fork-join", {"width": 2, "work": 8},
                         objective="max_fun", budget_rule=("const", 1))

    def test_budget_rules(self):
        chain = {"lengths": [8, 8], "family": "binary"}
        const = ScenarioSpec("chain", chain, budget_rule=("const", 5)).materialize()
        assert const.budget == 5.0
        factor = ScenarioSpec("chain", chain,
                              budget_rule=("makespan-factor", 0.5)).materialize()
        assert factor.budget == 8.0  # zero-resource makespan 16 * 0.5
        per_job = ScenarioSpec("chain", chain,
                               budget_rule=("per-job", 2.0)).materialize()
        assert per_job.budget == 4.0  # 2 improvable (non-constant) jobs

    def test_min_resource_objective(self):
        problem = ScenarioSpec("chain", {"lengths": [8, 8]},
                               objective="min_resource",
                               budget_rule=("const", 10)).materialize()
        assert problem.target_makespan == 10.0

    def test_materialization_is_deterministic_and_counted(self):
        spec = ScenarioSpec("layered-random",
                            {"num_layers": 2, "jobs_per_layer": 2}, seed=9,
                            budget_rule=("const", 4))
        reset_materialization_counters()
        from repro.engine.fingerprint import dag_fingerprint

        assert dag_fingerprint(spec.build_dag()) == dag_fingerprint(spec.build_dag())
        assert materialization_info()["dag_builds"] == 2


class TestScenarioGrid:
    def grid(self):
        return ScenarioGrid(
            generators=({"generator": "fork-join",
                         "params": {"width": Axis([2, 4]), "work": 16}},
                        {"generator": "chain",
                         "params": {"lengths": [8, 16]}}),
            seeds=(0, 1),
            budget_rules=(("const", 4.0), ("per-job", 1.0)))

    def test_size_matches_expansion(self):
        grid = self.grid()
        specs = list(grid.expand())
        assert grid.size() == len(specs) == (2 + 1) * 2 * 2

    def test_expansion_is_deterministic(self):
        a = [s.cell_digest() for s in self.grid().expand()]
        b = [s.cell_digest() for s in self.grid().expand()]
        assert a == b

    def test_payload_round_trip(self):
        grid = self.grid()
        clone = ScenarioGrid.from_payload(grid.to_payload())
        assert ([s.cell_digest() for s in clone.expand()]
                == [s.cell_digest() for s in grid.expand()])

    def test_axis_values_expand_sorted_by_name(self):
        grid = ScenarioGrid(
            generators=({"generator": "fork-join",
                         "params": {"width": Axis([2, 4]),
                                    "work": Axis([8, 16])}},),
            budget_rules=(("const", 4.0),))
        cells = [(s.params["width"], s.params["work"]) for s in grid.expand()]
        assert cells == [(2, 8), (2, 16), (4, 8), (4, 16)]

    def test_unseeded_generators_collapse_the_seed_axis(self):
        grid = ScenarioGrid(
            generators=({"generator": "fork-join",
                         "params": {"width": 2, "work": 8}},),
            seeds=(0, 1, 2), budget_rules=(("const", 4.0),))
        digests = {s.cell_digest() for s in grid.expand()}
        assert len(digests) == 1  # dedup downstream collapses them

    def test_base_seed_derives_distinct_per_cell_seeds(self):
        grid = ScenarioGrid(
            generators=({"generator": "layered-random",
                         "params": {"num_layers": Axis([2, 3]),
                                    "jobs_per_layer": 2}},),
            seeds=7, budget_rules=(("const", 4.0), ("const", 8.0)))
        seeds = [s.seed for s in grid.expand()]
        assert len(set(seeds)) == len(seeds) == 4
        assert seeds == [s.seed for s in grid.expand()]

    def test_derived_seeds_ignore_spelled_out_defaults(self):
        implicit = ScenarioGrid(
            generators=({"generator": "layered-random",
                         "params": {"num_layers": 2, "jobs_per_layer": 2}},),
            seeds=7, budget_rules=(("const", 4.0),))
        explicit = ScenarioGrid(
            generators=({"generator": "layered-random",
                         "params": {"num_layers": 2, "jobs_per_layer": 2,
                                    "family": "general",
                                    "edge_probability": 0.5,
                                    "max_base": 40}},),
            seeds=7, budget_rules=(("const", 4.0),))
        assert ([s.cell_digest() for s in implicit.expand()]
                == [s.cell_digest() for s in explicit.expand()])

    def test_same_seed_grids_expand_identically_across_processes(self):
        grid = self.grid()
        local = [s.cell_digest() for s in grid.expand()]
        script = (
            "import json, sys\n"
            "from repro.scenarios import ScenarioGrid\n"
            "grid = ScenarioGrid.from_payload(json.loads(sys.argv[1]))\n"
            "print(json.dumps([s.cell_digest() for s in grid.expand()]))\n"
        )
        import json

        output = subprocess.run(
            [sys.executable, "-c", script, json.dumps(grid.to_payload())],
            capture_output=True, text=True, check=True, timeout=120)
        assert json.loads(output.stdout) == local

    def test_grid_validation(self):
        with pytest.raises(ValidationError, match="at least one generator"):
            ScenarioGrid(generators=())
        with pytest.raises(ValidationError, match="unknown generator"):
            ScenarioGrid(generators=("nope",))
        with pytest.raises(ValidationError, match="at least one seed"):
            ScenarioGrid(generators=("sp-random",), seeds=())


class TestAdversarialGenerators:
    def test_partition_gadget_matches_theorem(self):
        from repro import MinMakespanProblem, exact_reference

        yes = partition_gadget_dag(values=(1, 1, 2))
        yes.validate()
        report = exact_reference(MinMakespanProblem(yes, 4.0))
        assert report is not None and report.makespan == 2.0  # B/2
        no = partition_gadget_dag(values=(1, 1, 3))
        report = exact_reference(MinMakespanProblem(no, 5.0))
        assert report is not None and report.makespan == 3.0  # > B/2

    def test_partition_values_deterministic(self):
        assert partition_values(5, 9, 3) == partition_values(5, 9, 3)
        assert partition_values(5, 9, 3) != partition_values(5, 9, 4)
        assert sum(partition_values(5, 9, 2)) % 2 == 0  # even seeds balance

    def test_minresource_chain_walks_on_time(self):
        from repro import MinMakespanProblem, solve

        dag = minresource_chain_dag(num_variables=3)
        dag.validate()
        # Two units of resource thread the chain: both arrive at time n.
        assert solve(MinMakespanProblem(dag, 2.0)).makespan == 3.0
        # Starved of the second unit, a penalty arc goes unexpedited.
        assert solve(MinMakespanProblem(dag, 0.0)).makespan > 3.0

    def test_arc_to_node_conversion_preserves_paths(self):
        construction = PartitionInstance((2, 3))
        from repro.hardness.partition import build_partition_dag

        built = build_partition_dag(construction)
        dag = arc_dag_to_tradeoff_dag(built.arc_dag)
        dag.validate()
        assert dag.num_jobs == built.arc_dag.num_arcs + 2
        assert dag.source == "source" and dag.sink == "sink"
        # Zero-allocation makespan equals the sum of unexpedited forced
        # durations on the heaviest chain, identical to the arc view.
        assert dag.makespan_value({}) > 0

    def test_registered_adversarial_cells_materialize(self):
        spec = ScenarioSpec("adversarial-partition",
                            {"num_values": 3, "max_value": 5}, seed=4,
                            budget_rule=("const", 6.0))
        problem = spec.materialize()
        problem.dag.validate()
        spec2 = ScenarioSpec("adversarial-minresource-chain",
                             {"num_variables": 2},
                             budget_rule=("const", 2.0))
        spec2.materialize().dag.validate()


class TestSpecFingerprint:
    def setup_method(self):
        clear_caches()

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(["fork-join", "chain", "layered-random"]),
           st.integers(0, 3), st.sampled_from([("const", 6.0),
                                               ("per-job", 1.0)]))
    def test_spec_fingerprint_equals_materialized_request_key(
            self, generator, seed, rule):
        params = {
            "fork-join": {"width": 2, "work": 8},
            "chain": {"lengths": [4, 8]},
            "layered-random": {"num_layers": 2, "jobs_per_layer": 2},
        }[generator]
        if generator == "fork-join":
            seed = 0
        spec = ScenarioSpec(generator, params, seed=seed, budget_rule=rule)
        assert spec_fingerprint(spec) == request_key(spec.materialize())

    def test_cached_and_recorded_fingerprints(self):
        clear_caches()
        spec = ScenarioSpec("fork-join", {"width": 2, "work": 8},
                            budget_rule=("const", 4.0))
        assert cached_spec_fingerprint(spec) is None
        key = spec_fingerprint(spec)
        assert cached_spec_fingerprint(spec) == key
        clear_caches()
        assert cached_spec_fingerprint(spec) is None
        record_spec_fingerprint(spec, key)
        assert cached_spec_fingerprint(spec) == key

    def test_alias_key_is_stable_and_distinct(self):
        spec = ScenarioSpec("fork-join", {"width": 2, "work": 8},
                            budget_rule=("const", 4.0))
        assert spec_alias_key(spec) == spec_alias_key(spec)
        assert spec_alias_key(spec) != spec_fingerprint(spec)
        assert spec_alias_key(spec) != spec_alias_key(spec, "bicriteria-lp")

    def test_uncacheable_options_are_rejected(self):
        spec = ScenarioSpec("fork-join", {"width": 2, "work": 8},
                            budget_rule=("const", 4.0))
        with pytest.raises(ValidationError, match="content-keyable"):
            spec_fingerprint(spec, probe=object())


class TestWorkloadCatalog:
    def test_build_is_memoized_across_fingerprint_and_problem(self):
        workload = get_workload("small-layered-binary")
        dag = workload.build()
        assert workload.build() is dag
        assert workload.problem().dag is dag
        workload.fingerprint()
        assert workload.build() is dag

    def test_catalog_matches_direct_generators(self):
        from repro.engine.fingerprint import dag_fingerprint
        from repro.generators.random_dag import chain_dag, layered_random_dag

        assert (get_workload("medium-layered-kway").fingerprint()
                == dag_fingerprint(layered_random_dag(5, 6, family="kway",
                                                      seed=23)))
        assert (get_workload("deep-chain-binary").fingerprint()
                == dag_fingerprint(chain_dag([32, 16, 48, 24, 40, 56, 20, 36],
                                             family="binary")))

    def test_workloads_are_spec_backed(self):
        for name in workload_names():
            workload = get_workload(name)
            assert isinstance(workload.spec, ScenarioSpec)
            assert workload.spec.budget_rule == ("const", workload.budget)
            payload = workload.spec.to_payload()
            assert ScenarioSpec.from_payload(payload) == workload.spec
