"""Tests for the series-parallel exact DP (Section 3.4) and SP recognition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dag import TradeoffDAG
from repro.core.duration import GeneralStepDuration, KWaySplitDuration, RecursiveBinarySplitDuration
from repro.core.exact import exact_min_makespan
from repro.core.series_parallel import (
    SPLeaf,
    decompose_series_parallel,
    parallel,
    series,
    sp_exact_min_makespan,
    sp_exact_min_resource,
    sp_min_makespan_table,
)
from repro.generators import balanced_sp_tree, random_sp_tree


def small_tree():
    return series(
        SPLeaf("a", GeneralStepDuration([(0, 10), (2, 4), (4, 1)])),
        parallel(
            SPLeaf("b", GeneralStepDuration([(0, 8), (3, 2)])),
            SPLeaf("c", GeneralStepDuration([(0, 6), (1, 3), (5, 0)])),
        ),
    )


class TestDPRecurrence:
    def test_leaf_table_is_duration(self):
        leaf = SPLeaf("x", GeneralStepDuration([(0, 7), (2, 3)]))
        table = sp_min_makespan_table(leaf, 4)
        assert list(table) == [7, 7, 3, 3, 3]

    def test_series_adds(self):
        tree = series(SPLeaf("a", GeneralStepDuration([(0, 5), (1, 2)])),
                      SPLeaf("b", GeneralStepDuration([(0, 4), (2, 1)])))
        table = sp_min_makespan_table(tree, 3)
        # both jobs see the same lambda units (reuse over the path)
        assert list(table) == [9, 6, 3, 3]

    def test_parallel_splits(self):
        tree = parallel(SPLeaf("a", GeneralStepDuration([(0, 5), (1, 0)])),
                        SPLeaf("b", GeneralStepDuration([(0, 5), (1, 0)])))
        table = sp_min_makespan_table(tree, 2)
        # one unit only helps one branch; two units clear both
        assert list(table) == [5, 5, 0]

    def test_table_is_non_increasing(self):
        table = sp_min_makespan_table(small_tree(), 12)
        assert all(table[i + 1] <= table[i] + 1e-12 for i in range(len(table) - 1))

    def test_matches_exhaustive_exact_solver(self):
        """On the realised DAG the DP optimum equals the enumeration optimum."""
        tree = small_tree()
        dag = tree.to_dag()
        for budget in [0, 2, 4, 6, 9]:
            dp = sp_exact_min_makespan(tree, budget)
            brute = exact_min_makespan(dag, budget)
            assert dp.makespan == pytest.approx(brute.makespan)

    def test_allocation_is_budget_feasible_and_achieves_makespan(self):
        tree = small_tree()
        budget = 6
        solution = sp_exact_min_makespan(tree, budget)
        dag = tree.to_dag()
        assert dag.makespan_value(solution.allocation) <= solution.makespan + 1e-9
        from repro.core.minflow import allocation_min_budget
        needed, _ = allocation_min_budget(dag, solution.allocation)
        assert needed <= budget + 1e-9

    def test_budget_used_is_minimal_for_optimum(self):
        tree = small_tree()
        solution = sp_exact_min_makespan(tree, 20)
        smaller = sp_min_makespan_table(tree, int(solution.budget_used))
        assert smaller[int(solution.budget_used)] == pytest.approx(solution.makespan)
        if solution.budget_used >= 1:
            assert sp_min_makespan_table(tree, int(solution.budget_used) - 1)[-1] \
                > solution.makespan

    def test_min_resource(self):
        tree = small_tree()
        target = 10.0
        solution = sp_exact_min_resource(tree, target)
        assert solution.makespan <= target
        # one unit less cannot achieve the target
        if solution.budget_used >= 1:
            table = sp_min_makespan_table(tree, int(solution.budget_used))
            assert table[int(solution.budget_used) - 1] > target

    def test_min_resource_infeasible_target(self):
        tree = series(SPLeaf("a", GeneralStepDuration([(0, 5)])))
        solution = sp_exact_min_resource(tree, 1.0)
        assert solution.metadata["status"] == "infeasible"

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 10), st.integers(0, 1000))
    def test_dp_matches_enumeration_on_random_trees(self, jobs, budget, seed):
        tree = random_sp_tree(jobs, family="general", seed=seed, max_base=12)
        dag = tree.to_dag()
        dp = sp_exact_min_makespan(tree, budget)
        brute = exact_min_makespan(dag, budget)
        assert dp.makespan == pytest.approx(brute.makespan)


class TestRecognition:
    def test_round_trip_from_composition(self):
        tree = small_tree()
        dag = tree.to_dag()
        recovered = decompose_series_parallel(dag)
        assert recovered is not None
        # the recovered tree yields the same DP values as the original
        for budget in [0, 3, 6]:
            assert sp_min_makespan_table(recovered, budget)[-1] == \
                pytest.approx(sp_min_makespan_table(tree, budget)[-1])

    def test_balanced_trees_recognised(self):
        tree = balanced_sp_tree(3, family="binary", seed=1)
        assert decompose_series_parallel(tree.to_dag()) is not None

    def test_non_sp_dag_rejected(self):
        """The 'N' DAG (crossing dependency) is not two-terminal series-parallel."""
        dag = TradeoffDAG()
        for name in ["s", "a", "b", "c", "d", "t"]:
            dag.add_job(name, GeneralStepDuration([(0, 1)]))
        for u, v in [("s", "a"), ("s", "b"), ("a", "c"), ("a", "d"), ("b", "d"),
                     ("c", "t"), ("d", "t")]:
            dag.add_edge(u, v)
        assert decompose_series_parallel(dag) is None

    def test_chain_recognised(self, simple_chain_dag):
        assert decompose_series_parallel(simple_chain_dag) is not None

    def test_sp_dag_structure(self):
        tree = parallel(SPLeaf("x", KWaySplitDuration(9)),
                        series(SPLeaf("y", RecursiveBinarySplitDuration(8)),
                               SPLeaf("z", KWaySplitDuration(4))))
        dag = tree.to_dag()
        dag.validate()
        assert set(tree.job_names()) <= set(map(str, dag.jobs)) | set(dag.jobs)
