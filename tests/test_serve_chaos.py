"""Fault-injection matrix for the wire layer (serve.py hardening).

Every test drives a *live* server over a unix socket and injects one of
the production failure modes the protocol must survive -- malformed
JSON, non-object lines, oversized payloads, mid-stream disconnects,
slow readers, admission overload -- then asserts the server (a) stays
up and keeps serving other clients, (b) counts the fault in
``ServerStats``, and (c) leaves store contents and results bit-identical
to a clean run.  CI runs this file under pytest-timeout in the
concurrency-stress job.
"""

from __future__ import annotations

import asyncio
import json
import threading
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.core.problem import TradeoffSolution
from repro.engine import (
    MIN_MAKESPAN,
    AsyncSweepService,
    Portfolio,
    clear_caches,
    register_solver,
    set_solution_store,
    unregister_solver,
)
from repro.loadgen.chaos import malformed_line, non_object_line, oversized_line
from repro.scenarios import ScenarioSpec
from repro.serve import SweepServer, request_metrics


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def run_async(coro, timeout: float = 30.0):
    async def _bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(_bounded())


def _spec(width: int = 2) -> ScenarioSpec:
    return ScenarioSpec("fork-join", {"width": width, "work": 4},
                        budget_rule=("makespan-factor", 0.5))


def _service(tmp_path, name="store", **kwargs):
    kwargs.setdefault("portfolio", Portfolio(executor="thread", max_workers=2))
    return AsyncSweepService(store=str(tmp_path / name), **kwargs)


@contextmanager
def blocking_solver(name="test-chaos-blocking"):
    """Event-gated solver so tests control exactly when solves finish."""
    started = threading.Event()
    release = threading.Event()

    @register_solver(name, summary="event-gated chaos solver",
                     objectives=(MIN_MAKESPAN,), kind="baseline",
                     theorem="-", guarantee="none", priority=996,
                     can_solve=lambda p, s, lim: True)
    def _gated(problem, structure, limits, **options):
        started.set()
        release.wait(10.0)
        return TradeoffSolution(makespan=float(problem.budget),
                                budget_used=0.0, algorithm=name)

    try:
        yield SimpleNamespace(name=name, started=started, release=release)
    finally:
        release.set()
        unregister_solver(name)


async def _connect(path):
    return await asyncio.open_unix_connection(path)


async def _request(writer, reader, payload):
    """One request -> all its response lines through the ``done`` line."""
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    lines = []
    while True:
        line = json.loads(await reader.readline())
        lines.append(line)
        if (line.get("done") or line.get("rejected") or "pong" in line
                or "stats" in line or "metrics" in line
                or (line.get("error") and "index" not in line)):
            return lines


async def _sweep_lines(path, spec, request_id, method=None):
    reader, writer = await _connect(path)
    payload = {"op": "sweep_spec", "id": request_id,
               "specs": [spec.to_payload()]}
    if method:
        payload["method"] = method
    lines = await _request(writer, reader, payload)
    writer.close()
    await writer.wait_closed()
    return lines


def _strip_timing(slot):
    """A response slot minus its machine-dependent fields."""
    report = dict(slot["report"])
    report.pop("wall_time", None)
    return {"key": slot["key"], "source": slot["source"], "report": report}


class TestProtocolFaults:
    @pytest.mark.parametrize("raw, expect", [
        (malformed_line(), "bad request line"),
        (non_object_line(), "bad request line"),
        (b'"just a string"\n', "bad request line"),
    ])
    def test_garbage_line_answered_and_connection_survives(
            self, tmp_path, raw, expect):
        async def body():
            async with SweepServer(_service(tmp_path),
                                   unix_socket=str(tmp_path / "s.sock")) \
                    as server:
                reader, writer = await _connect(server.unix_socket)
                writer.write(raw)
                await writer.drain()
                error = json.loads(await reader.readline())
                assert error["id"] is None
                assert expect in error["error"]
                # the same connection keeps serving real traffic
                pong = await _request(writer, reader,
                                      {"op": "ping", "id": "after"})
                assert pong[0]["pong"] is True
                writer.close()
                await writer.wait_closed()
                assert server.stats.protocol_errors == 1
        run_async(body())

    def test_unknown_op_is_a_protocol_error_with_id(self, tmp_path):
        async def body():
            async with SweepServer(_service(tmp_path),
                                   unix_socket=str(tmp_path / "s.sock")) \
                    as server:
                reader, writer = await _connect(server.unix_socket)
                lines = await _request(writer, reader,
                                       {"op": "frobnicate", "id": "u1"})
                assert lines[0]["id"] == "u1"
                assert "unknown op" in lines[0]["error"]
                pong = await _request(writer, reader,
                                      {"op": "ping", "id": "u2"})
                assert pong[0]["pong"] is True
                writer.close()
                await writer.wait_closed()
                assert server.stats.protocol_errors == 1
        run_async(body())

    def test_oversized_line_discarded_without_buffering(self, tmp_path):
        async def body():
            server = SweepServer(_service(tmp_path),
                                 unix_socket=str(tmp_path / "s.sock"),
                                 max_line_bytes=4096)
            async with server:
                reader, writer = await _connect(server.unix_socket)
                writer.write(oversized_line(64 * 1024))
                await writer.drain()
                error = json.loads(await reader.readline())
                assert error["id"] is None
                assert "oversized" in error["error"]
                # a real sweep still works on the very same connection
                lines = await _request(
                    writer, reader,
                    {"op": "sweep_spec", "id": "r1",
                     "specs": [_spec().to_payload()]})
                slots = [ln for ln in lines if "index" in ln]
                assert slots[0]["report"] is not None
                writer.close()
                await writer.wait_closed()
                assert server.stats.oversized_lines == 1
                assert server.stats.protocol_errors == 1
        run_async(body())

    def test_barely_oversized_line_is_still_rejected(self, tmp_path):
        # Regression: a line that fits in one read() chunk but exceeds the
        # bound must be rejected on length, not parsed because the newline
        # arrived before the buffer check.
        async def body():
            server = SweepServer(_service(tmp_path),
                                 unix_socket=str(tmp_path / "s.sock"),
                                 max_line_bytes=2048)
            async with server:
                reader, writer = await _connect(server.unix_socket)
                writer.write(oversized_line(2100))
                await writer.drain()
                error = json.loads(await reader.readline())
                assert "oversized" in error["error"]
                writer.close()
                await writer.wait_closed()
                assert server.stats.oversized_lines == 1
        run_async(body())


class TestDisconnects:
    def test_midstream_disconnect_leaves_results_bit_identical(self, tmp_path):
        """A client vanishing mid-sweep must not corrupt anyone else."""
        victim, bystander = _spec(2), _spec(3)

        async def clean_run():
            async with SweepServer(_service(tmp_path, "clean"),
                                   unix_socket=str(tmp_path / "c.sock")) \
                    as server:
                lines = await _sweep_lines(server.unix_socket, bystander,
                                           "clean-1")
            return [ln for ln in lines if "index" in ln][0]

        async def chaotic_run():
            with blocking_solver() as solver:
                service = _service(tmp_path, "chaos")
                async with SweepServer(service,
                                       unix_socket=str(tmp_path / "x.sock")) \
                        as server:
                    # client A starts a gated sweep, then vanishes
                    reader, writer = await _connect(server.unix_socket)
                    writer.write(json.dumps(
                        {"op": "sweep_spec", "id": "doomed",
                         "specs": [victim.to_payload()],
                         "method": solver.name}).encode() + b"\n")
                    await writer.drain()
                    loop = asyncio.get_running_loop()
                    assert await loop.run_in_executor(
                        None, solver.started.wait, 5.0)
                    writer.close()          # mid-stream disconnect
                    await writer.wait_closed()
                    # client B's concurrent sweep is unaffected
                    lines = await _sweep_lines(server.unix_socket, bystander,
                                               "fine-1")
                    solver.release.set()
                    await service.drain()
                    # the abandoned solve still finished and persisted:
                    # re-asking (same method -> same fingerprint) is a
                    # pure store hit, no recompute
                    check = [ln for ln in await _sweep_lines(
                        server.unix_socket, victim, "check-1",
                        method=solver.name) if "index" in ln][0]
                    assert check["source"] == "store"
                    assert service.store.get_report(check["key"]) is not None
                    assert service.stats.computed == 2
                return [ln for ln in lines if "index" in ln][0]

        chaotic_slot = run_async(chaotic_run())
        clear_caches()
        set_solution_store(None)
        clean_slot = run_async(clean_run())
        assert _strip_timing(chaotic_slot) == _strip_timing(clean_slot)
        assert chaotic_slot["source"] == "computed"


class TestSlowReaders:
    def test_slow_reader_dropped_but_other_clients_served(self, tmp_path):
        async def body():
            server = SweepServer(_service(tmp_path),
                                 unix_socket=str(tmp_path / "s.sock"),
                                 drain_timeout=0.25,
                                 write_buffer_limit=1024,
                                 socket_sndbuf=4096)
            async with server:
                # the stalled client: floods pings whose ids echo back
                # ~8KB each, and never reads a byte
                reader, writer = await _connect(server.unix_socket)
                big_id = "x" * 8192
                for index in range(200):
                    writer.write(json.dumps(
                        {"op": "ping", "id": f"{index}-{big_id}"}).encode()
                        + b"\n")
                    await writer.drain()
                deadline = asyncio.get_running_loop().time() + 10.0
                while (server.stats.slow_reader_drops == 0
                       and asyncio.get_running_loop().time() < deadline):
                    await asyncio.sleep(0.05)
                assert server.stats.slow_reader_drops == 1
                # a well-behaved client is completely unaffected
                lines = await _sweep_lines(server.unix_socket, _spec(),
                                           "healthy-1")
                assert [ln for ln in lines
                        if "index" in ln][0]["report"] is not None
                writer.close()
                await writer.wait_closed()
        run_async(body())


class TestAdmissionControl:
    def test_saturated_server_rejects_then_recovers(self, tmp_path):
        with blocking_solver() as solver:
            async def body():
                service = _service(tmp_path)
                server = SweepServer(service,
                                     unix_socket=str(tmp_path / "s.sock"),
                                     admission_limit=1)
                async with server:
                    reader, writer = await _connect(server.unix_socket)
                    writer.write(json.dumps(
                        {"op": "sweep_spec", "id": "holder",
                         "specs": [_spec(4).to_payload()],
                         "method": solver.name}).encode() + b"\n")
                    await writer.drain()
                    loop = asyncio.get_running_loop()
                    assert await loop.run_in_executor(
                        None, solver.started.wait, 5.0)
                    # while the only slot is held, probes bounce immediately
                    for probe in range(3):
                        lines = await _sweep_lines(server.unix_socket,
                                                   _spec(2 + probe),
                                                   f"probe-{probe}")
                        assert lines[0]["rejected"] is True
                        assert "overloaded" in lines[0]["error"]
                    assert server.stats.rejections == 3
                    solver.release.set()
                    # the holder's sweep still answers on its connection
                    done = []
                    while not done:
                        line = json.loads(await reader.readline())
                        if line.get("done"):
                            done.append(line)
                    await service.drain()
                    # and new traffic is admitted again
                    lines = await _sweep_lines(server.unix_socket, _spec(9),
                                               "after-1")
                    slots = [ln for ln in lines if "index" in ln]
                    assert slots[0]["report"] is not None
                    assert not any(ln.get("rejected") for ln in lines)
                    writer.close()
                    await writer.wait_closed()
            run_async(body())


class TestMetricsOp:
    def test_metrics_snapshot_over_the_wire(self, tmp_path):
        async def body():
            service = _service(tmp_path)
            async with SweepServer(service,
                                   unix_socket=str(tmp_path / "s.sock")) \
                    as server:
                before = await request_metrics(
                    unix_socket=server.unix_socket)
                await _sweep_lines(server.unix_socket, _spec(), "m-1")
                await _sweep_lines(server.unix_socket, _spec(), "m-2")
                after = await request_metrics(
                    unix_socket=server.unix_socket)
            assert before["snapshot_schema"] == 1
            assert after["service"]["requests"] \
                   - before["service"]["requests"] == 2
            assert after["service"]["computed"] == 1
            assert after["service"]["store_hits"] == 1
            assert after["store"]["writes"] >= 1
            assert after["server"]["connections"] >= 4
            assert after["server"]["requests"] >= 4
            for section in ("service", "store", "lru", "kernels",
                            "materializations", "server"):
                assert section in after
        run_async(body())
