"""Tests for the spec-native sweep paths: SweepService over grids,
AsyncSweepService.submit_specs and the ``sweep_spec`` wire protocol --
including the bit-identical-to-materialized equivalence the refactor
promises."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.dag import TradeoffDAG
from repro.engine.core import clear_caches
from repro.engine.portfolio import Portfolio
from repro.engine.service import SweepService
from repro.engine.store import SolutionStore
from repro.scenarios import (
    Axis,
    ScenarioGrid,
    ScenarioSpec,
    materialization_info,
    register_generator,
    reset_materialization_counters,
    unregister_generator,
)
from repro.utils.validation import ValidationError


@pytest.fixture
def grid():
    return ScenarioGrid(
        generators=({"generator": "fork-join",
                     "params": {"width": Axis([2, 3]), "work": 16}},
                    {"generator": "chain",
                     "params": {"lengths": [8, 16]}}),
        seeds=(0,),
        budget_rules=(("const", 4.0), ("const", 8.0)))


def fresh_state():
    clear_caches()
    reset_materialization_counters()


def thread_service(root) -> SweepService:
    return SweepService(store=SolutionStore(str(root)),
                        portfolio=Portfolio(executor="thread"))


class TestSpecSweepService:
    def test_cold_sweep_solves_every_cell_lazily(self, grid, tmp_path):
        fresh_state()
        with thread_service(tmp_path / "store") as service:
            report = service.run(grid)
        assert report.stats.scenarios == grid.size() == 6
        assert report.stats.computed == 6 and report.stats.failed == 0
        assert all(r.source == "computed" and r.spec is not None
                   and r.problem is None for r in report.results)
        # Lazy materialization: one DAG build per unique cell, in-shard.
        assert materialization_info()["dag_builds"] == 6

    def test_warm_sweep_builds_zero_dags(self, grid, tmp_path):
        fresh_state()
        with thread_service(tmp_path / "store") as service:
            service.run(grid)
        fresh_state()  # drop every in-process memo: only the store survives
        with thread_service(tmp_path / "store") as service:
            warm = service.run(grid)
        assert warm.stats.store_hits == 6 and warm.stats.computed == 0
        assert materialization_info()["dag_builds"] == 0
        assert all(r.source == "store" for r in warm.results)

    def test_results_bit_identical_to_materialized_path(self, grid, tmp_path):
        fresh_state()
        with thread_service(tmp_path / "spec-store") as service:
            spec_report = service.run(grid)
        fresh_state()
        problems = [spec.materialize() for spec in grid.expand()]
        with thread_service(tmp_path / "mat-store") as service:
            mat_report = service.run(problems)
        assert ([r.key for r in spec_report.results]
                == [r.key for r in mat_report.results])
        assert ([r.report.makespan for r in spec_report.results]
                == [r.report.makespan for r in mat_report.results])
        assert ([r.report.budget_used for r in spec_report.results]
                == [r.report.budget_used for r in mat_report.results])

    def test_duplicate_cells_deduplicate_before_materialization(self, tmp_path):
        fresh_state()
        spec = ScenarioSpec("fork-join", {"width": 2, "work": 16},
                            budget_rule=("const", 4.0))
        with thread_service(tmp_path / "store") as service:
            report = service.run([spec] * 5)
        assert report.stats.scenarios == 5
        assert report.stats.unique == 1 and report.stats.duplicates == 4
        assert materialization_info()["dag_builds"] == 1

    def test_spec_manifest_resume(self, grid, tmp_path):
        fresh_state()
        manifest = str(tmp_path / "manifest.json")
        with thread_service(tmp_path / "store") as service:
            service.run(grid, manifest=manifest)
        fresh_state()
        with thread_service(tmp_path / "store") as service:
            warm = service.run(grid, manifest=manifest)
        assert warm.stats.resumed == warm.stats.store_hits == 6

    def test_failing_cells_report_per_cell(self, tmp_path):
        @register_generator("test-broken", summary="always raises",
                            families=("binary",), params_schema={})
        def _build():
            raise RuntimeError("deliberately broken generator")

        try:
            fresh_state()
            bad = ScenarioSpec("test-broken", budget_rule=("const", 1.0))
            good = ScenarioSpec("fork-join", {"width": 2, "work": 8},
                                budget_rule=("const", 4.0))
            with thread_service(tmp_path / "store") as service:
                report = service.run([bad, good])
            by_index = {r.index: r for r in report.results}
            assert by_index[0].source == "failed"
            assert "deliberately broken" in by_index[0].error
            assert by_index[1].source == "computed"
        finally:
            unregister_generator("test-broken")

    def test_mixed_specs_and_problems_rejected(self, grid, tmp_path):
        from repro.core.duration import RecursiveBinarySplitDuration
        from repro.core.problem import MinMakespanProblem

        dag = TradeoffDAG()
        dag.add_job("s")
        dag.add_job("x", RecursiveBinarySplitDuration(8))
        dag.add_job("t")
        dag.add_edge("s", "x")
        dag.add_edge("x", "t")
        spec = ScenarioSpec("fork-join", {"width": 2, "work": 8},
                            budget_rule=("const", 4.0))
        with thread_service(tmp_path / "store") as service:
            with pytest.raises(ValidationError, match="do not mix"):
                list(service.sweep([spec, MinMakespanProblem(dag, 2.0)]))


class TestAsyncSpecService:
    def test_submit_specs_dedups_in_flight(self, grid, tmp_path):
        from repro.engine.async_service import AsyncSweepService

        async def tour():
            fresh_state()
            async with AsyncSweepService(
                    store=str(tmp_path / "store"),
                    portfolio=Portfolio(executor="thread")) as service:
                first = await service.submit_specs(grid)
                second = await service.submit_specs(grid)
                results_a = await first.results()
                results_b = await second.results()
            return results_a, results_b, service.stats

        results_a, results_b, stats = asyncio.run(tour())
        assert stats.deduped == 6 and stats.computed == 6
        assert [r.key for r in results_a] == [r.key for r in results_b]
        assert all(r.report is not None for r in results_a + results_b)

    def test_spec_waiter_on_problem_inflight_keeps_its_spec(self, tmp_path):
        """A spec submission deduplicated onto a problem-kind in-flight
        solve (same request fingerprint) must still get its spec back --
        and the problem waiter must not inherit the spec."""
        from repro import request_key
        from repro.engine.async_service import AsyncSweepService
        from repro.engine.fingerprint import record_spec_fingerprint

        spec = ScenarioSpec("fork-join", {"width": 2, "work": 16},
                            budget_rule=("const", 4.0))
        problem = spec.materialize()

        async def tour():
            fresh_state()
            # Pre-resolve the spec's fingerprint so submit_specs dedups
            # onto the problem entry under the true request key.
            record_spec_fingerprint(spec, request_key(problem))
            async with AsyncSweepService(
                    store=str(tmp_path / "store"),
                    portfolio=Portfolio(executor="thread")) as service:
                problem_ticket = await service.submit([problem])
                spec_ticket = await service.submit_specs([spec])
                problem_result = (await problem_ticket.results())[0]
                spec_result = (await spec_ticket.results())[0]
            return problem_result, spec_result, service.stats

        problem_result, spec_result, stats = asyncio.run(tour())
        assert stats.deduped == 1 and stats.computed == 1
        assert spec_result.spec == spec and problem_result.spec is None
        assert spec_result.key == problem_result.key
        assert spec_result.report.makespan == problem_result.report.makespan

    def test_submit_specs_warm_store_builds_no_dags(self, grid, tmp_path):
        from repro.engine.async_service import AsyncSweepService

        async def run_once():
            async with AsyncSweepService(
                    store=str(tmp_path / "store"),
                    portfolio=Portfolio(executor="thread")) as service:
                ticket = await service.submit_specs(grid)
                return await ticket.results()

        fresh_state()
        cold = asyncio.run(run_once())
        fresh_state()
        warm = asyncio.run(run_once())
        assert all(r.source == "store" for r in warm)
        assert materialization_info()["dag_builds"] == 0
        assert [r.key for r in warm] == [r.key for r in cold]


class TestSweepSpecWire:
    def run_server(self, coroutine):
        return asyncio.run(coroutine)

    def test_wire_results_bit_identical_to_local_materialized_sweep(
            self, grid, tmp_path):
        from repro.engine.async_service import AsyncSweepService
        from repro.serve import SweepServer, request_sweep_spec

        async def spec_over_socket():
            service = AsyncSweepService(store=str(tmp_path / "wire-store"),
                                        portfolio=Portfolio(executor="thread"))
            async with SweepServer(service, port=0) as server:
                return await request_sweep_spec(grid, port=server.port)

        fresh_state()
        wire_lines = self.run_server(spec_over_socket())

        fresh_state()
        problems = [spec.materialize() for spec in grid.expand()]
        with thread_service(tmp_path / "local-store") as service:
            local = service.run(problems)

        assert [line["key"] for line in wire_lines] == \
               [r.key for r in local.results]
        assert [line["report"]["solution"]["makespan"] for line in wire_lines] \
               == [r.report.makespan for r in local.results]
        assert [line["cell"] for line in wire_lines] == \
               [s.cell_digest() for s in grid.expand()]

    def test_wire_accepts_spec_lists_and_rejects_bad_requests(self, tmp_path):
        from repro.engine.async_service import AsyncSweepService
        from repro.serve import SweepServer, request_sweep_spec

        specs = [ScenarioSpec("fork-join", {"width": 2, "work": 8},
                              budget_rule=("const", 4.0))]

        async def tour():
            service = AsyncSweepService(store=str(tmp_path / "store"),
                                        portfolio=Portfolio(executor="thread"))
            async with SweepServer(service, port=0) as server:
                lines = await request_sweep_spec(specs, port=server.port)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b'{"op": "sweep_spec", "id": "bad"}\n')
                await writer.drain()
                error_line = await reader.readline()
                writer.close()
                await writer.wait_closed()
            return lines, error_line

        fresh_state()
        lines, error_line = self.run_server(tour())
        assert lines[0]["source"] == "computed"
        assert b"error" in error_line and b"exactly one of" in error_line

    def test_grid_analysis_tables_group_by_axes(self, grid, tmp_path):
        from repro.analysis import grid_records, render_grid_table, summarize_grid

        fresh_state()
        with thread_service(tmp_path / "store") as service:
            report = service.run(grid)
        records = grid_records(report)
        assert len(records) == 6
        assert {r["generator"] for r in records} == {"fork-join", "chain"}
        summary = summarize_grid(report, by=("generator", "budget_rule"))
        assert set(summary) == {("fork-join", "const:4"),
                                ("fork-join", "const:8"),
                                ("chain", "const:4"), ("chain", "const:8")}
        assert summary[("fork-join", "const:4")]["count"] == 2
        table = render_grid_table(report, by=("generator",))
        assert "fork-join" in table and "chain" in table
