"""Tests for the persistent solution store (tier 2 of the engine cache).

Covers the happy path (round trips, two-tier solve integration), the
stability of the solution serialization, and — most importantly — the
degradation paths: truncated blobs, schema mismatches and hand-mangled
payloads must all decay to *recompute*, never to a crash.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.core.dag import TradeoffDAG
from repro.core.duration import GeneralStepDuration
from repro.core.problem import MinMakespanProblem, TradeoffSolution
from repro.engine import (
    STORE_SCHEMA_VERSION,
    SolutionStore,
    UnserializableSolutionError,
    clear_caches,
    get_solution_store,
    request_key,
    set_solution_store,
    solution_cache_info,
    solution_from_payload,
    solution_to_payload,
    solve,
)
from repro.engine.store import report_from_payload, report_to_payload


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


@pytest.fixture()
def store(tmp_path):
    return SolutionStore(str(tmp_path / "store"))


def _chain_dag() -> TradeoffDAG:
    dag = TradeoffDAG()
    for name in ("s", "x", "t"):
        dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
    dag.add_edge("s", "x")
    dag.add_edge("x", "t")
    return dag


def _problem(budget: float = 2.0) -> MinMakespanProblem:
    return MinMakespanProblem(_chain_dag(), budget)


# ---------------------------------------------------------------------------
# solution serialization (fingerprint module)
# ---------------------------------------------------------------------------

class TestSolutionSerialization:
    def test_round_trip_plain_solution(self):
        solution = TradeoffSolution(
            makespan=12.5, budget_used=3.0,
            allocation={"a": 1.0, "b": 2.0, ("tuple", 3): 0.5},
            algorithm="test", lower_bound=10.0,
            metadata={"alpha": 0.5, "nested": {"xs": [1, 2.5]}})
        restored = solution_from_payload(solution_to_payload(solution))
        assert restored.makespan == solution.makespan
        assert restored.budget_used == solution.budget_used
        assert restored.allocation == solution.allocation
        assert restored.lower_bound == solution.lower_bound
        assert restored.metadata["alpha"] == 0.5
        assert restored.metadata["nested"]["xs"] == [1, 2.5]

    def test_payload_is_json_and_deterministic(self):
        solution = TradeoffSolution(makespan=1.0, budget_used=0.0,
                                    allocation={"b": 1.0, "a": 2.0})
        a = json.dumps(solution_to_payload(solution), sort_keys=True)
        b = json.dumps(solution_to_payload(solution), sort_keys=True)
        assert a == b

    def test_non_finite_floats_round_trip(self):
        solution = TradeoffSolution(makespan=math.inf, budget_used=0.0)
        restored = solution_from_payload(solution_to_payload(solution))
        assert math.isinf(restored.makespan)

    def test_unserializable_allocation_key_raises(self):
        solution = TradeoffSolution(makespan=1.0, budget_used=1.0,
                                    allocation={object(): 1.0})
        with pytest.raises(UnserializableSolutionError):
            solution_to_payload(solution)

    def test_exotic_metadata_is_dropped_not_fatal(self):
        solution = TradeoffSolution(makespan=1.0, budget_used=1.0,
                                    metadata={"ok": 1, "bad": object()})
        payload = solution_to_payload(solution)
        assert payload["metadata"] == {"ok": 1}
        assert payload["dropped_metadata"] == ["bad"]

    def test_sentinel_shaped_metadata_round_trips(self):
        # user dicts that look like the encoder's inf/nan sentinel must
        # survive unchanged, not be decoded as floats (or crash the load)
        solution = TradeoffSolution(
            makespan=1.0, budget_used=1.0,
            metadata={"a": {"__float__": "1.5"}, "b": {"__float__": "abc"},
                      "c": {"__escaped__": {"x": 1}}})
        restored = solution_from_payload(solution_to_payload(solution))
        assert restored.metadata == solution.metadata

    def test_sentinel_shaped_top_level_metadata_round_trips(self):
        # ... including when the *whole* metadata dict has the sentinel shape
        for metadata in ({"__float__": "inf"}, {"__float__": "x"},
                         {"__escaped__": {"y": 2}}):
            solution = TradeoffSolution(makespan=1.0, budget_used=1.0,
                                        metadata=dict(metadata))
            restored = solution_from_payload(solution_to_payload(solution))
            assert restored.metadata == metadata


# ---------------------------------------------------------------------------
# store basics
# ---------------------------------------------------------------------------

class TestStoreBasics:
    def test_put_get_and_stats(self, store):
        key = "ab" + "0" * 62
        assert store.get(key) is None
        assert store.put(key, {"value": 7})
        assert store.get(key) == {"value": 7}
        info = store.info()
        assert (info["hits"], info["misses"], info["writes"]) == (1, 1, 1)
        assert info["entries"] == 1

    def test_persists_across_handles(self, store):
        key = "cd" + "1" * 62
        store.put(key, {"value": 1})
        reopened = SolutionStore(store.root)
        assert reopened.get(key) == {"value": 1}
        assert key in reopened

    def test_sharding_by_prefix(self, store):
        store.put("aa" + "0" * 62, {"v": 1})
        store.put("ab" + "0" * 62, {"v": 2})
        shard_files = os.listdir(os.path.join(store.root, "shards"))
        assert sorted(shard_files) == ["aa.rps", "ab.rps"]

    def test_json_format_still_writable(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), shard_format="json")
        store.put("aa" + "0" * 62, {"v": 1})
        shard_files = os.listdir(os.path.join(store.root, "shards"))
        assert shard_files == ["aa.json"]
        assert SolutionStore(store.root).get("aa" + "0" * 62) == {"v": 1}

    def test_eviction_keeps_newest(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), max_entries_per_shard=3)
        keys = ["aa" + format(i, "062d") for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        assert store.entry_count() == 3
        assert store.info()["evictions"] == 2
        assert store.get(keys[0]) is None  # oldest evicted
        assert store.get(keys[4]) == {"i": 4}  # newest kept

    def test_clear_removes_blobs(self, store):
        store.put("aa" + "0" * 62, {"v": 1})
        store.clear()
        assert store.entry_count() == 0
        assert store.get("aa" + "0" * 62) is None

    def test_payload_iteration(self, store):
        store.put("aa" + "0" * 62, {"v": 1})
        store.put("bb" + "0" * 62, {"v": 2})
        entries = dict(store.payloads())
        assert len(entries) == 2
        assert all("__seq__" not in payload for payload in entries.values())

    def test_unserializable_payload_skipped(self, store):
        assert not store.put("aa" + "0" * 62, {"bad": object()})
        assert store.info()["skipped_writes"] == 1
        assert store.get("aa" + "0" * 62) is None

    def test_put_many_groups_by_shard(self, store):
        items = [("aa" + format(i, "062d"), {"i": i}) for i in range(3)]
        items += [("bb" + "0" * 62, {"i": 99})]
        assert store.put_many(items) == 4
        assert store.entry_count() == 4
        assert store.get("bb" + "0" * 62) == {"i": 99}
        # all three aa-entries landed with distinct, increasing sequences
        reopened = SolutionStore(store.root)
        assert reopened.get(items[2][0]) == {"i": 2}


# ---------------------------------------------------------------------------
# corruption + versioning: recompute, never crash
# ---------------------------------------------------------------------------

class TestStoreCorruption:
    # The hand-editing tests below target the legacy v1 JSON shards
    # explicitly; the packed v2 equivalents live in test_store_format.py.
    @pytest.fixture()
    def store(self, tmp_path):
        return SolutionStore(str(tmp_path / "store"), shard_format="json")

    def test_truncated_shard_blob_is_a_miss(self, store):
        key = "aa" + "0" * 62
        store.put(key, {"v": 1})
        path = os.path.join(store.root, "shards", "aa.json")
        blob = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(blob[: len(blob) // 2])  # truncate mid-JSON
        fresh = SolutionStore(store.root)
        assert fresh.get(key) is None
        assert fresh.info()["corrupt_shards"] == 1
        # the next write repairs the shard
        assert fresh.put(key, {"v": 2})
        assert SolutionStore(store.root).get(key) == {"v": 2}

    def test_schema_mismatch_is_a_miss(self, store):
        key = "aa" + "0" * 62
        store.put(key, {"v": 1})
        path = os.path.join(store.root, "shards", "aa.json")
        blob = json.load(open(path, encoding="utf-8"))
        blob["schema"] = STORE_SCHEMA_VERSION + 1
        json.dump(blob, open(path, "w", encoding="utf-8"))
        fresh = SolutionStore(store.root)
        assert fresh.get(key) is None
        assert fresh.info()["schema_mismatches"] == 1

    def test_malformed_blob_shape_is_a_miss(self, store):
        path = os.path.join(store.root, "shards", "aa.json")
        json.dump(["not", "a", "shard"], open(path, "w", encoding="utf-8"))
        assert store.get("aa" + "0" * 62) is None
        assert store.info()["corrupt_shards"] >= 1

    def test_non_dict_entry_values_skipped_not_crash(self, store):
        good = "aa" + "0" * 62
        bad = "aa" + "1" * 62
        store.put(good, {"v": 1})
        path = os.path.join(store.root, "shards", "aa.json")
        blob = json.load(open(path, encoding="utf-8"))
        blob["entries"][bad] = "junk-string-entry"
        json.dump(blob, open(path, "w", encoding="utf-8"))
        fresh = SolutionStore(store.root)
        assert fresh.get(bad) is None          # corrupted entry: miss
        assert fresh.get(good) == {"v": 1}      # shard-mates survive
        assert fresh.info()["corrupt_shards"] == 1
        assert fresh.put(bad, {"v": 2})         # next write repairs
        assert fresh.get(bad) == {"v": 2}

    def test_mangled_report_payload_recomputes_not_crashes(self, store):
        problem = _problem()
        report = solve(problem, use_cache=False)
        key = request_key(problem)
        store.put_report(key, report)
        # sabotage the stored solution payload
        payload = store.get(key)
        payload["solution"] = {"allocation": "nonsense"}
        store.put(key, payload)
        assert store.get_report(key) is None  # decode failure -> miss

    def test_meta_schema_mismatch_counted(self, tmp_path):
        root = tmp_path / "s"
        SolutionStore(str(root))
        meta_path = root / "meta.json"
        meta = json.load(open(meta_path, encoding="utf-8"))
        meta["schema"] = STORE_SCHEMA_VERSION + 7
        json.dump(meta, open(meta_path, "w", encoding="utf-8"))
        reopened = SolutionStore(str(root))
        assert reopened.info()["schema_mismatches"] == 1


# ---------------------------------------------------------------------------
# two-tier integration with solve()
# ---------------------------------------------------------------------------

class TestTwoTierSolve:
    def test_store_hit_after_lru_cleared(self, tmp_path):
        set_solution_store(str(tmp_path / "tier2"))
        problem = _problem()
        fresh = solve(problem)
        assert not fresh.from_cache and fresh.cache_tier == ""
        clear_caches()  # new-process simulation: LRU gone, store not
        from_store = solve(problem)
        assert from_store.from_cache and from_store.cache_tier == "store"
        assert from_store.makespan == pytest.approx(fresh.makespan)
        assert from_store.solver_id == fresh.solver_id
        assert from_store.certificate is not None
        assert from_store.certificate.passed == fresh.certificate.passed
        # promoted into the LRU: third call is a memory hit
        from_memory = solve(problem)
        assert from_memory.cache_tier == "memory"

    def test_report_round_trip_preserves_fields(self):
        problem = _problem()
        report = solve(problem, use_cache=False)
        restored = report_from_payload(report_to_payload(report, "k" * 64))
        assert restored.makespan == pytest.approx(report.makespan)
        assert restored.budget_used == pytest.approx(report.budget_used)
        assert restored.allocation == report.allocation
        assert restored.objective == report.objective
        assert restored.parameter == report.parameter
        assert restored.structure == report.structure
        assert restored.feasible == report.feasible

    def test_clear_caches_store_flag(self, tmp_path):
        store = set_solution_store(str(tmp_path / "tier2"))
        solve(_problem())
        assert store.entry_count() == 1
        clear_caches()  # default: store survives
        assert store.entry_count() == 1
        clear_caches(store=True)
        assert store.entry_count() == 0

    def test_cache_info_reports_store(self, tmp_path):
        assert solution_cache_info()["store"] is None
        set_solution_store(str(tmp_path / "tier2"))
        info = solution_cache_info()
        assert info["store"]["entries"] == 0
        assert get_solution_store() is not None
        # the raw-speed counters a metrics endpoint would scrape
        for counter in ("payload_decodes", "alias_fast_hits", "scans",
                        "full_shard_parses"):
            assert info["store"][counter] == 0
        assert info["lp"]["warm_start_hits"] == 0
        assert "simplex_iterations" in info["lp"]

    def test_distinct_requests_get_distinct_keys(self):
        problem = _problem()
        base = request_key(problem)
        assert request_key(problem) == base  # stable
        assert request_key(_problem(budget=3.0)) != base
        assert request_key(problem, method="bicriteria-lp") != base
        assert request_key(problem, validate=False) != base
        assert request_key(problem, method="bicriteria-lp", alpha=0.75) != \
            request_key(problem, method="bicriteria-lp", alpha=0.5)

    def test_request_key_rejects_non_literal_options(self):
        # solve() refuses to cache such requests, so there is no valid key;
        # colliding digests would let the sweep service serve wrong reports
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError, match="content-keyable"):
            request_key(_problem(), method="bicriteria-lp", alpha={"a": 1})

    def test_request_key_matches_solve_auto_hint_filtering(self, tmp_path):
        # auto-dispatch drops option hints the chosen solver does not
        # declare *before* keying; request_key must mirror that, or the
        # service and solve() would read/write the store under different keys
        store = set_solution_store(str(tmp_path / "tier2"))
        problem = _problem()
        solve(problem, alpha=0.75)  # auto picks the DP; alpha is dropped
        clear_caches()
        hit = solve(problem)  # same logical request, no hint
        assert hit.cache_tier == "store"
        assert request_key(problem, alpha=0.75) == request_key(problem)
        assert store.entry_count() == 1  # one key, no duplicate entries

    def test_use_cache_false_skips_both_tiers(self, tmp_path):
        store = set_solution_store(str(tmp_path / "tier2"))
        solve(_problem(), use_cache=False)
        assert store.entry_count() == 0

    def test_object_valued_options_disable_caching(self, tmp_path):
        # objects have reprs that may alias distinct values (or reuse a
        # freed address); such requests must bypass both cache tiers
        from repro.core.problem import TradeoffSolution
        from repro.engine import MIN_MAKESPAN, register_solver, unregister_solver
        from repro.engine.core import _options_key

        assert _options_key({"config": object()}) == ("__uncacheable__",)
        assert _options_key({"alpha": 0.5, "names": ["a", "b"]})[0] != "__uncacheable__"

        calls = []

        @register_solver("test-opt", summary="-", objectives=(MIN_MAKESPAN,),
                         kind="baseline", theorem="-", guarantee="none",
                         priority=996, can_solve=lambda p, s, lim: True,
                         option_names=("config",))
        def _run(problem, structure, limits, **options):
            calls.append(options.get("config"))
            return TradeoffSolution(makespan=0.0, budget_used=0.0, algorithm="test-opt")

        try:
            store = set_solution_store(str(tmp_path / "tier2"))
            problem = _problem()
            solve(problem, method="test-opt", config=object())
            solve(problem, method="test-opt", config=object())
            assert len(calls) == 2  # no false cache hit between the two
            assert store.entry_count() == 0  # never persisted
        finally:
            unregister_solver("test-opt")

    def test_reopen_with_other_shard_width_keeps_entries(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), shard_width=2)
        key = "abc" + "0" * 61
        store.put(key, {"v": 1})
        reopened = SolutionStore(store.root, shard_width=3)
        assert reopened.shard_width == 2  # disk layout wins
        assert reopened.get(key) == {"v": 1}


# ---------------------------------------------------------------------------
# compaction / max-entries GC (long-lived deployments)
# ---------------------------------------------------------------------------
class TestStoreCompaction:
    @staticmethod
    def _key(prefix: str, index: int) -> str:
        return prefix + f"{index:0{64 - len(prefix)}d}"

    def test_auto_gc_keeps_newest_entries(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), max_total_entries=3)
        for index in range(6):
            store.put(self._key("aa", index), {"v": index})
        assert store.entry_count() == 3
        kept = sorted(key for key, _payload in store.payloads())
        # oldest first: entries 0..2 evicted, 3..5 kept
        assert kept == [self._key("aa", index) for index in (3, 4, 5)]
        info = store.info()
        assert info["evictions"] == 3
        assert info["compactions"] >= 1
        assert info["max_total_entries"] == 3

    def test_eviction_order_is_insertion_order(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        for index in range(5):
            store.put(self._key("ab", index), {"v": index})
        evicted = store.compact(2)
        assert evicted == 3
        kept = sorted(key for key, _payload in store.payloads())
        assert kept == [self._key("ab", 3), self._key("ab", 4)]
        # repeated compaction below the cap is a no-op (but still counted)
        assert store.compact(2) == 0
        assert store.info()["compactions"] == 2

    def test_compact_spans_shards(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        for index, prefix in enumerate(["aa", "bb", "cc", "dd"]):
            store.put(self._key(prefix, index), {"v": index})
        assert store.compact(2) == 2
        assert store.entry_count() == 2

    def test_eviction_order_is_global_across_shards(self, tmp_path):
        # Insertion order must win even when it runs *against* shard-id
        # order: writing dd, cc, bb, aa must evict dd and cc first.
        store = SolutionStore(str(tmp_path / "s"))
        for index, prefix in enumerate(["dd", "cc", "bb", "aa"]):
            store.put(self._key(prefix, index), {"v": index})
        assert store.compact(2) == 2
        kept = sorted(key for key, _payload in store.payloads())
        assert kept == [self._key("aa", 3), self._key("bb", 2)]

    def test_insertion_order_survives_reopen(self, tmp_path):
        # The sequence floor is re-established above every persisted entry,
        # so entries written after a reopen are newer than all old ones.
        store = SolutionStore(str(tmp_path / "s"))
        store.put(self._key("zz", 0), {"v": 0})
        reopened = SolutionStore(store.root)
        reopened.put(self._key("aa", 1), {"v": 1})
        assert reopened.compact(1) == 1
        kept = [key for key, _payload in reopened.payloads()]
        assert kept == [self._key("aa", 1)]  # the post-reopen write survives

    def test_compact_requires_a_cap(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        with pytest.raises(Exception):
            store.compact()

    def test_gc_survives_reopen(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), max_total_entries=2)
        for index in range(4):
            store.put(self._key("aa", index), {"v": index})
        reopened = SolutionStore(store.root)
        assert reopened.entry_count() == 2
        assert reopened.get(self._key("aa", 3)) == {"v": 3}

    def test_gc_preserves_reports_end_to_end(self, tmp_path):
        store = set_solution_store(
            SolutionStore(str(tmp_path / "tier2"), max_total_entries=2))
        for budget in (1.0, 2.0, 3.0, 4.0):
            solve(_problem(budget))
        assert store.entry_count() == 2
        # the surviving (newest) entries still decode into full reports
        payload_keys = [key for key, _payload in store.payloads()]
        assert all(store.get_report(key) is not None for key in payload_keys)
