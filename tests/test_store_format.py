"""Tests for the packed binary (v2) SolutionStore shard format.

Covers what ``test_store.py`` cannot from the legacy JSON angle: the
v1 <-> v2 migration (bit-identical round trips), mixed-format stores,
binary corruption decay (truncate / mangle / version-bump -> recompute,
never crash), the lazy ``get()`` / alias fast path and the ``scan()``
bulk iterator, all gated on the store's decode counters.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.sweep import sweep_records
from repro.core.dag import TradeoffDAG
from repro.core.duration import GeneralStepDuration
from repro.core.problem import MinMakespanProblem
from repro.engine import (
    SolutionStore,
    clear_caches,
    request_key,
    set_solution_store,
    solve,
)
from repro.engine.store import atomic_write_json


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def _problem(budget: float = 2.0) -> MinMakespanProblem:
    dag = TradeoffDAG()
    for name in ("s", "x", "t"):
        dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
    dag.add_edge("s", "x")
    dag.add_edge("x", "t")
    return MinMakespanProblem(dag, budget)


def _key(prefix: str, index: int) -> str:
    return prefix + f"{index:0{64 - len(prefix)}d}"


def _shard_path(store: SolutionStore, shard_id: str, ext: str) -> str:
    return os.path.join(store.root, "shards", f"{shard_id}.{ext}")


def _snapshot(store: SolutionStore) -> str:
    """Canonical JSON of every payload -- the bit-identity yardstick."""
    return json.dumps(dict(store.payloads()), sort_keys=True)


# ---------------------------------------------------------------------------
# v1 <-> v2 migration
# ---------------------------------------------------------------------------

class TestMigration:
    def _seed_v1(self, tmp_path) -> SolutionStore:
        store = SolutionStore(str(tmp_path / "s"), shard_format="json")
        for budget in (1.0, 2.0, 3.0):
            problem = _problem(budget)
            store.put_report(request_key(problem), solve(problem, use_cache=False))
        store.put(_key("aa", 7), {"v": 7, "nested": {"xs": [1, 2.5]}})
        store.put(_key("ab", 8), {"alias_of": _key("aa", 7)})
        return store

    def test_v1_to_v2_round_trips_bit_identically(self, tmp_path):
        store = self._seed_v1(tmp_path)
        before = _snapshot(store)
        keys = [key for key, _ in store.payloads()]

        stats = SolutionStore(store.root, shard_format="binary").migrate()
        assert stats["failed"] == 0
        assert stats["entries"] == len(keys) == 5

        migrated = SolutionStore(store.root)
        shard_files = os.listdir(os.path.join(store.root, "shards"))
        assert all(name.endswith(".rps") for name in shard_files)
        assert _snapshot(migrated) == before  # payloads byte-for-byte equal
        # reports still decode into full SolveReports
        report_keys = [k for k in keys
                       if migrated.get(k) and "solution" in migrated.get(k)]
        assert report_keys and all(migrated.get_report(k) is not None
                                   for k in report_keys)
        assert migrated.info()["migrated_shards"] == 0  # counted on the mover
        meta = json.load(open(os.path.join(store.root, "meta.json")))
        assert meta["shard_format"] == "binary"

    def test_v2_to_v1_escape_hatch(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))  # binary default
        store.put(_key("aa", 1), {"v": 1})
        before = _snapshot(store)
        handle = SolutionStore(store.root, shard_format="json")
        assert handle.migrate()["shards"] == 1
        shard_files = os.listdir(os.path.join(store.root, "shards"))
        assert shard_files == ["aa.json"]
        assert _snapshot(SolutionStore(store.root)) == before

    def test_migration_preserves_insertion_order(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), shard_format="json")
        for index, prefix in enumerate(["dd", "cc", "bb", "aa"]):
            store.put(_key(prefix, index), {"v": index})
        mover = SolutionStore(store.root, shard_format="binary")
        mover.migrate()
        fresh = SolutionStore(store.root)
        assert fresh.compact(2) == 2  # oldest (dd, cc) evicted, not aa/bb
        kept = sorted(key for key, _payload in fresh.payloads())
        assert kept == [_key("aa", 3), _key("bb", 2)]


# ---------------------------------------------------------------------------
# mixed-format stores (per-shard negotiation)
# ---------------------------------------------------------------------------

class TestMixedFormat:
    def test_shards_in_both_formats_coexist(self, tmp_path):
        json_handle = SolutionStore(str(tmp_path / "s"), shard_format="json")
        json_handle.put(_key("aa", 1), {"v": 1})
        binary_handle = SolutionStore(json_handle.root)  # binary default
        binary_handle.put(_key("bb", 2), {"v": 2})

        fresh = SolutionStore(json_handle.root)
        assert fresh.get(_key("aa", 1)) == {"v": 1}
        assert fresh.get(_key("bb", 2)) == {"v": 2}
        assert fresh.entry_count() == 2
        names = sorted(os.listdir(os.path.join(fresh.root, "shards")))
        assert names == ["aa.json", "bb.rps"]

    def test_write_converts_the_touched_shard(self, tmp_path):
        json_handle = SolutionStore(str(tmp_path / "s"), shard_format="json")
        json_handle.put(_key("aa", 1), {"v": 1})
        binary_handle = SolutionStore(json_handle.root)
        binary_handle.put(_key("aa", 2), {"v": 2})  # same shard, new format
        names = os.listdir(os.path.join(json_handle.root, "shards"))
        assert names == ["aa.rps"]  # rewritten + old blob unlinked
        fresh = SolutionStore(json_handle.root)
        assert fresh.get(_key("aa", 1)) == {"v": 1}  # shard-mate carried over
        assert fresh.get(_key("aa", 2)) == {"v": 2}

    def test_both_files_present_merges_by_seq(self, tmp_path):
        # Simulates a crash between a format-converting rewrite and the old
        # file's unlink: both blobs remain; the higher sequence must win.
        store = SolutionStore(str(tmp_path / "s"), shard_format="json")
        store.put(_key("aa", 1), {"v": "old"})
        json_blob = open(_shard_path(store, "aa", "json"), "rb").read()
        binary_handle = SolutionStore(store.root)
        binary_handle.put(_key("aa", 1), {"v": "new"})
        with open(_shard_path(store, "aa", "json"), "wb") as handle:
            handle.write(json_blob)  # resurrect the stale v1 blob

        fresh = SolutionStore(store.root)
        assert fresh.get(_key("aa", 1)) == {"v": "new"}
        assert fresh.entry_count() == 1


# ---------------------------------------------------------------------------
# binary corruption: recompute, never crash
# ---------------------------------------------------------------------------

class TestBinaryCorruption:
    def test_truncated_binary_shard_is_a_miss(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        key = _key("aa", 1)
        store.put(key, {"v": 1})
        path = _shard_path(store, "aa", "rps")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        fresh = SolutionStore(store.root)
        assert fresh.get(key) is None
        assert fresh.info()["corrupt_shards"] >= 1
        # the next write repairs the shard
        assert fresh.put(key, {"v": 2})
        assert SolutionStore(store.root).get(key) == {"v": 2}

    def test_mangled_payload_bytes_skip_one_entry(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        good, bad = _key("aa", 1), _key("aa", 2)
        store.put(good, {"kind": "good"})
        store.put(bad, {"kind": "badx"})
        path = _shard_path(store, "aa", "rps")
        blob = open(path, "rb").read()
        # Corrupt exactly the bad entry's payload blob (same length, so the
        # record table stays valid -- this is per-entry payload damage).
        target = json.dumps({"kind": "badx"}, sort_keys=True,
                            separators=(",", ":")).encode()
        assert blob.count(target) == 1
        with open(path, "wb") as handle:
            handle.write(blob.replace(target, b"}" * len(target)))
        fresh = SolutionStore(store.root)
        assert fresh.get(bad) is None            # corrupted entry: miss
        assert fresh.get(good) == {"kind": "good"}  # shard-mates survive
        assert fresh.info()["corrupt_shards"] == 1

    def test_bad_magic_is_corruption(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        key = _key("aa", 1)
        store.put(key, {"v": 1})
        path = _shard_path(store, "aa", "rps")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(b"XXXXXXXX" + blob[8:])
        fresh = SolutionStore(store.root)
        assert fresh.get(key) is None
        assert fresh.info()["corrupt_shards"] == 1

    def test_unknown_binary_version_is_schema_mismatch(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"))
        key = _key("aa", 1)
        store.put(key, {"v": 1})
        path = _shard_path(store, "aa", "rps")
        blob = bytearray(open(path, "rb").read())
        blob[8] = 99  # the little-endian version field follows the magic
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        fresh = SolutionStore(store.root)
        assert fresh.get(key) is None
        assert fresh.info()["schema_mismatches"] == 1
        assert fresh.info()["corrupt_shards"] == 0


# ---------------------------------------------------------------------------
# lazy get() / alias fast path / scan() -- the decode-counter gates
# ---------------------------------------------------------------------------

class TestLazyDecode:
    def _seed(self, tmp_path) -> SolutionStore:
        store = SolutionStore(str(tmp_path / "s"))
        for index in range(3):
            store.put(_key("aa", index), {"v": index})
        store.put(_key("aa", 90), {"alias_of": _key("aa", 0)})
        store.put(_key("ab", 91), {"alias_of": _key("aa", 1)})
        return store

    def test_get_decodes_exactly_one_payload(self, tmp_path):
        store = self._seed(tmp_path)
        fresh = SolutionStore(store.root)
        assert fresh.get(_key("aa", 1)) == {"v": 1}
        info = fresh.info()
        assert info["payload_decodes"] == 1     # not the whole shard
        assert info["full_shard_parses"] == 0   # no JSON shard touched
        fresh.get(_key("aa", 1))                # repeat: served from memo
        assert fresh.info()["payload_decodes"] == 1

    def test_alias_resolves_without_any_decode(self, tmp_path):
        store = self._seed(tmp_path)
        fresh = SolutionStore(store.root)
        assert fresh.get(_key("aa", 90)) == {"alias_of": _key("aa", 0)}
        info = fresh.info()
        assert info["alias_fast_hits"] == 1
        assert info["payload_decodes"] == 0
        assert info["full_shard_parses"] == 0

    def test_scan_skips_aliases_without_decoding(self, tmp_path):
        store = self._seed(tmp_path)
        fresh = SolutionStore(store.root)
        entries = dict(fresh.scan())
        assert len(entries) == 3
        assert all("alias_of" not in payload for payload in entries.values())
        info = fresh.info()
        assert info["scans"] == 1
        assert info["scan_entries"] == 3
        assert info["scan_alias_skips"] == 2
        assert info["payload_decodes"] == 3     # one per non-alias entry
        assert info["full_shard_parses"] == 0

    def test_scan_can_include_aliases_decode_free(self, tmp_path):
        store = self._seed(tmp_path)
        fresh = SolutionStore(store.root)
        entries = dict(fresh.scan(include_aliases=True))
        assert len(entries) == 5
        assert entries[_key("aa", 90)] == {"alias_of": _key("aa", 0)}
        assert fresh.info()["payload_decodes"] == 3  # aliases still free

    def test_sweep_records_decode_budget(self, tmp_path):
        # The analysis/sweep.py satellite gate: regenerating sweep records
        # from a warm store must decode at most one payload per non-alias
        # entry and never parse a whole shard as JSON.
        store = SolutionStore(str(tmp_path / "s"))
        non_alias = 0
        for budget in (1.0, 2.0, 3.0):
            problem = _problem(budget)
            key = request_key(problem)
            store.put_report(key, solve(problem, use_cache=False))
            store.put(_key("ee", int(budget)), {"alias_of": key})
            non_alias += 1
        fresh = SolutionStore(store.root)
        records = sweep_records(fresh)
        assert len(records) == non_alias
        info = fresh.info()
        assert info["payload_decodes"] <= non_alias
        assert info["full_shard_parses"] == 0
        assert info["scan_alias_skips"] == non_alias


# ---------------------------------------------------------------------------
# durability knob
# ---------------------------------------------------------------------------

class TestDurability:
    def test_durable_store_round_trips(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), durable=True)
        key = _key("aa", 1)
        assert store.put(key, {"v": 1})
        assert SolutionStore(store.root).get(key) == {"v": 1}
        assert store.info()["durable"] is True

    def test_durable_json_store_round_trips(self, tmp_path):
        store = SolutionStore(str(tmp_path / "s"), shard_format="json",
                              durable=True)
        key = _key("aa", 1)
        assert store.put(key, {"v": 1})
        assert SolutionStore(store.root).get(key) == {"v": 1}

    def test_atomic_write_json_fsync(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1}, fsync=True)
        assert json.load(open(path)) == {"a": 1}
        assert not [name for name in os.listdir(tmp_path)
                    if name.startswith(".tmp-")]

    def test_two_tier_solve_on_binary_store(self, tmp_path):
        # End-to-end: the engine's tier-2 path runs unchanged on v2 shards.
        store = set_solution_store(
            SolutionStore(str(tmp_path / "tier2"), durable=True))
        problem = _problem()
        fresh = solve(problem)
        clear_caches()
        from_store = solve(problem)
        assert from_store.from_cache and from_store.cache_tier == "store"
        assert from_store.makespan == pytest.approx(fresh.makespan)
        assert store.info()["shard_format"] == "binary"
