"""Cross-process SolutionStore write-safety tests.

The store's per-shard advisory locking (fcntl + process-local thread
locks) is what makes N cluster runners safe over one shared root.  These
tests exercise the real process boundary with ``sys.executable``
subprocesses: interleaved writers must not lose updates, a SIGKILLed
holder's lock must be recoverable, the compaction election must have a
single winner, and a timed-out lock must degrade to a lock-free write
instead of wedging -- each outcome observable through the store counters.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.store import SolutionStore

SRC = str(Path(__file__).resolve().parents[1] / "src")

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="advisory-lock tests need posix")


def _env():
    env = dict(os.environ)
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + extra if extra else "")
    return env


WRITER = """
import sys
from repro.engine.store import SolutionStore

root, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = SolutionStore(root, lock_timeout=60.0)
for i in range(count):
    assert store.put(f"aa-{tag}-{i:04d}", {"tag": tag, "i": i})
print("DONE", store.lock_timeouts, flush=True)
"""

HOLDER = """
import sys, time
from repro.engine.store import SolutionStore

root, name = sys.argv[1], sys.argv[2]
store = SolutionStore(root)
held = store._guard(name)
assert held is not None
print("HOLDING", flush=True)
time.sleep(120)
"""


def _start_holder(root: str, name: str) -> subprocess.Popen:
    """Spawn a process that grabs the named store lock and sits on it."""
    process = subprocess.Popen([sys.executable, "-c", HOLDER, root, name],
                               env=_env(), stdout=subprocess.PIPE, text=True)
    line = process.stdout.readline()
    assert line.strip() == "HOLDING", f"holder failed to start: {line!r}"
    return process


def _reap(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
    process.wait(timeout=30)
    if process.stdout is not None:
        process.stdout.close()


class TestTwoWriterProcesses:
    def test_interleaved_same_shard_writes_lose_nothing(self, tmp_path):
        """Two processes hammering ONE shard: every update survives.

        Without the per-shard lock the read-modify-write cycles interleave
        and the losing process' entries vanish on rename (last-writer-wins
        over the whole shard file).
        """
        root = str(tmp_path / "store")
        count = 40
        writers = [subprocess.Popen(
            [sys.executable, "-c", WRITER, root, tag, str(count)],
            env=_env(), stdout=subprocess.PIPE, text=True)
            for tag in ("x", "y")]
        outputs = []
        for process in writers:
            out, _ = process.communicate(timeout=120)
            assert process.returncode == 0, out
            outputs.append(out.strip().split())
        # Neither writer fell back to the lock-free degraded path.
        for done, timeouts in outputs:
            assert done == "DONE" and timeouts == "0"
        view = SolutionStore(root)
        for tag in ("x", "y"):
            for i in range(count):
                payload = view.get(f"aa-{tag}-{i:04d}")
                assert payload is not None, f"lost {tag}/{i}"
                assert payload["tag"] == tag and payload["i"] == i
        assert view.corrupt_shards == 0

    def test_counters_surface_in_info_and_counters(self, tmp_path):
        store = SolutionStore(str(tmp_path / "store"))
        assert store.put("ab-1", {"v": 1})
        for source in (store.info(), store.counters()):
            assert source["lock_acquires"] >= 1
            assert source["lock_timeouts"] == 0
            assert source["stale_locks_recovered"] == 0
            assert source["compactions_skipped"] == 0
            assert source["stale_shard_reloads"] == 0
        assert store.info()["locking"] is True


class TestStaleLockRecovery:
    def test_sigkill_holder_is_taken_over(self, tmp_path):
        root = str(tmp_path / "store")
        holder = _start_holder(root, "aa")
        try:
            os.kill(holder.pid, signal.SIGKILL)
            holder.wait(timeout=30)
        finally:
            _reap(holder)
        store = SolutionStore(root, lock_timeout=10.0)
        assert store.put("aa-after-kill", {"ok": True})
        assert store.stale_locks_recovered == 1
        assert store.lock_timeouts == 0
        # The takeover rewrote the breadcrumb: the next write sees a live
        # (our own) holder trail, not a stale one.
        assert store.put("aa-after-kill-2", {"ok": True})
        assert store.stale_locks_recovered == 1

    def test_clean_release_leaves_no_stale_trail(self, tmp_path):
        root = str(tmp_path / "store")
        first = SolutionStore(root)
        assert first.put("aa-one", {"v": 1})
        second = SolutionStore(root)
        assert second.put("aa-two", {"v": 2})
        assert second.stale_locks_recovered == 0


class TestCompactionElection:
    def test_election_has_a_single_winner(self, tmp_path):
        root = str(tmp_path / "store")
        store = SolutionStore(root, lock_timeout=5.0)
        for i in range(6):
            assert store.put(f"aa-{i}", {"i": i})
        holder = _start_holder(root, "compaction")
        try:
            evicted = store.compact(max_entries=2)
        finally:
            _reap(holder)
        # Another process owned the compaction: this run stood down
        # without evicting, and the loss is an expected event -- counted
        # on its own, never as a lock timeout.
        assert evicted == 0
        assert store.compactions_skipped == 1
        assert store.lock_timeouts == 0
        assert all(store.get(f"aa-{i}") is not None for i in range(6))
        # Once the owner is gone this store wins the next election.
        evicted = store.compact(max_entries=2)
        assert evicted == 4
        assert store.compactions_skipped == 1


class TestLockTimeoutDegrade:
    def test_timed_out_write_degrades_and_is_counted(self, tmp_path):
        root = str(tmp_path / "store")
        holder = _start_holder(root, "aa")
        try:
            store = SolutionStore(root, lock_timeout=0.3)
            started = time.monotonic()
            assert store.put("aa-degraded", {"v": "still-written"})
            waited = time.monotonic() - started
        finally:
            _reap(holder)
        # Availability over strictness: the write still landed (lock-free
        # atomic rename), it waited the full timeout first, and the
        # degradation is visible in the counter the benchmarks gate on.
        assert store.lock_timeouts == 1
        assert waited >= 0.3
        assert store.get("aa-degraded") == {"v": "still-written"}
        view = SolutionStore(root)
        assert view.get("aa-degraded") == {"v": "still-written"}


class TestLockingDisabled:
    def test_no_locks_no_counters(self, tmp_path):
        root = str(tmp_path / "store")
        store = SolutionStore(root, locking=False)
        assert store.put("aa-plain", {"v": 1})
        assert store.lock_acquires == 0
        assert store.info()["locking"] is False
        assert not os.path.isdir(os.path.join(root, "locks"))


class TestCrossHandleReadCoherence:
    def test_miss_revalidates_against_disk(self, tmp_path):
        # Handle A caches the shard, then handle B (standing in for
        # another runner process) writes a new same-shard key.  A's
        # lookup must notice the on-disk rewrite and answer from a
        # reload -- a stale miss here is what turns a cluster failover
        # recovery into a recompute.
        root = str(tmp_path / "store")
        reader = SolutionStore(root)
        assert reader.put("aa-first", {"v": 1})
        assert reader.get("aa-first") == {"v": 1}  # shard now cached
        writer = SolutionStore(root)
        assert writer.put("aa-second", {"v": 2})
        assert reader.get("aa-second") == {"v": 2}
        assert reader.stale_shard_reloads == 1
        # A genuine miss after the reload does not count another one.
        assert reader.get("aa-absent") is None
        assert reader.stale_shard_reloads == 1
        for source in (reader.info(), reader.counters()):
            assert source["stale_shard_reloads"] == 1

    def test_unchanged_shard_misses_without_reload(self, tmp_path):
        store = SolutionStore(str(tmp_path / "store"))
        assert store.put("aa-only", {"v": 1})
        assert store.get("aa-only") == {"v": 1}
        assert store.get("aa-missing") is None
        assert store.stale_shard_reloads == 0
