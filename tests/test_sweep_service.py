"""Tests for the batched scenario-sweep service (dedup, streaming, resume).

The thread executor keeps the suite fast; the process-pool path is pinned
by ``benchmarks/bench_sweep_service.py`` and the portfolio tests.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.problem import MinMakespanProblem, MinResourceProblem
from repro.engine import (
    MIN_MAKESPAN,
    Portfolio,
    SolutionStore,
    SolveLimits,
    SweepService,
    clear_caches,
    register_solver,
    set_solution_store,
    solve,
    unregister_solver,
)
from repro.engine.service import MANIFEST_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_caches()
    set_solution_store(None)
    yield
    clear_caches()
    set_solution_store(None)


def _chain_dag(levels=("s", "x", "t")) -> TradeoffDAG:
    dag = TradeoffDAG()
    previous = None
    for name in levels:
        dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
        if previous is not None:
            dag.add_edge(previous, name)
        previous = name
    return dag


def _scenarios(budgets=(1.0, 2.0, 3.0, 1.0, 2.0)):
    dag = _chain_dag()
    return [MinMakespanProblem(dag, b) for b in budgets]


def _service(tmp_path, name="store", **kwargs):
    return SweepService(store=SolutionStore(str(tmp_path / name)),
                        portfolio=Portfolio(executor="thread"), **kwargs)


class TestSweepBasics:
    def test_dedup_and_order(self, tmp_path):
        scenarios = _scenarios()
        with _service(tmp_path) as service:
            report = service.run(scenarios)
        assert [r.index for r in report.results] == [0, 1, 2, 3, 4]
        assert report.stats.scenarios == 5
        assert report.stats.unique == 3
        assert report.stats.duplicates == 2
        assert report.stats.computed == 3
        # duplicates share the answer of their first occurrence
        assert report.results[0].key == report.results[3].key
        assert report.results[0].report.makespan == report.results[3].report.makespan

    def test_matches_direct_solve(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0, 4.0))
        with _service(tmp_path) as service:
            report = service.run(scenarios)
        for scenario, result in zip(scenarios, report.results):
            direct = solve(scenario, use_cache=False)
            assert result.report.makespan == pytest.approx(direct.makespan)
            assert result.report.solver_id == direct.solver_id

    def test_warm_run_is_all_store_hits(self, tmp_path):
        scenarios = _scenarios()
        with _service(tmp_path) as service:
            cold = service.run(scenarios)
            clear_caches()
            warm = service.run(scenarios)
        assert cold.stats.store_hits == 0
        assert warm.stats.store_hits == warm.stats.unique
        assert warm.stats.computed == 0
        assert warm.stats.hit_rate == 1.0
        for a, b in zip(cold.reports(), warm.reports()):
            assert a.makespan == pytest.approx(b.makespan)

    def test_streaming_and_callback_agree(self, tmp_path):
        scenarios = _scenarios()
        seen = []
        with _service(tmp_path) as service:
            streamed = list(service.sweep(scenarios))
            clear_caches()
            service.run(scenarios, on_result=seen.append)
        assert {r.index for r in streamed} == set(range(5))
        assert len(seen) == 5
        assert sorted(r.index for r in seen) == [0, 1, 2, 3, 4]

    def test_min_resource_scenarios(self, tmp_path):
        dag = _chain_dag()
        scenarios = [MinResourceProblem(dag, t) for t in (6.0, 9.0, 6.0)]
        with _service(tmp_path) as service:
            report = service.run(scenarios)
        assert report.stats.unique == 2
        assert all(r.report is not None for r in report.results)

    def test_empty_batch(self, tmp_path):
        with _service(tmp_path) as service:
            report = service.run([])
        assert report.results == []
        assert report.stats.scenarios == 0
        assert report.stats.hit_rate == 0.0

    def test_no_store_still_dedups(self):
        scenarios = _scenarios()
        with SweepService(portfolio=Portfolio(executor="thread")) as service:
            assert service.store is None
            report = service.run(scenarios)
        assert report.stats.computed == report.stats.unique == 3
        assert len(report.results) == 5

    def test_uses_global_store_by_default(self, tmp_path):
        global_store = set_solution_store(str(tmp_path / "global"))
        with SweepService(portfolio=Portfolio(executor="thread")) as service:
            assert service.store is global_store

    def test_explicit_shard_size(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0, 3.0, 4.0, 5.0, 6.0))
        with _service(tmp_path) as service:
            report = service.run(scenarios, shard_size=2)
        assert report.stats.shards == 3
        assert report.stats.shard_size == 2


class TestSweepFailures:
    def test_failing_scenario_reported_not_fatal(self, tmp_path):
        # a constant-duration chain stays solvable by exact-enumeration even
        # under max_exact_combinations=1; the step-duration chain does not
        tiny = TradeoffDAG()
        tiny.add_job("s")
        tiny.add_job("x", ConstantDuration(3.0))
        tiny.add_job("t")
        tiny.add_edge("s", "x")
        tiny.add_edge("x", "t")
        good = MinMakespanProblem(tiny, 2.0)
        bad = MinMakespanProblem(_chain_dag(), 2.0)
        with SweepService(store=SolutionStore(str(tmp_path / "store")),
                          portfolio=Portfolio(executor="thread"),
                          limits=SolveLimits(max_exact_combinations=1)) as service:
            report = service.run([good, bad, good], "exact-enumeration")
        assert report.stats.failed == 1
        assert report.results[1].source == "failed"
        assert "ExactSearchLimit" in report.results[1].error
        assert report.results[0].report is not None
        assert report.results[2].report is not None
        # failures are never persisted
        assert service.store.entry_count() == 1


class TestManifestResume:
    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0, 3.0, 4.0, 5.0, 6.0))
        manifest = str(tmp_path / "manifest.json")
        with _service(tmp_path) as service:
            stream = service.sweep(scenarios, manifest=manifest, shard_size=1)
            finished = [next(stream) for _ in range(3)]
            stream.close()  # interruption
            interrupted_keys = {r.key for r in finished}

            data = json.load(open(manifest, encoding="utf-8"))
            assert data["schema"] == MANIFEST_SCHEMA_VERSION
            assert data["completed"] is False
            assert interrupted_keys <= set(data["done"])

            clear_caches()
            resumed = service.run(scenarios, manifest=manifest, shard_size=1)
        stats = resumed.stats
        assert stats.resumed == len(interrupted_keys)
        assert stats.store_hits >= len(interrupted_keys)
        assert stats.computed == stats.unique - stats.store_hits
        assert json.load(open(manifest, encoding="utf-8"))["completed"] is True

    def test_completed_manifest_round_trip(self, tmp_path):
        scenarios = _scenarios()
        manifest = str(tmp_path / "manifest.json")
        with _service(tmp_path) as service:
            service.run(scenarios, manifest=manifest)
            data = json.load(open(manifest, encoding="utf-8"))
            assert data["completed"] is True
            assert len(data["done"]) == 3
            clear_caches()
            again = service.run(scenarios, manifest=manifest)
        assert again.stats.resumed == 3
        assert again.stats.computed == 0

    def test_corrupt_manifest_is_ignored(self, tmp_path):
        scenarios = _scenarios()
        manifest = tmp_path / "manifest.json"
        manifest.write_text("{ not json")
        with _service(tmp_path) as service:
            report = service.run(scenarios, manifest=str(manifest))
        assert report.stats.computed == 3  # fresh sweep, no crash
        assert json.load(open(manifest, encoding="utf-8"))["completed"] is True

    def test_method_mismatch_invalidates_manifest(self, tmp_path):
        scenarios = _scenarios()
        manifest = str(tmp_path / "manifest.json")
        with _service(tmp_path) as service:
            service.run(scenarios, "bicriteria-lp", manifest=manifest)
            clear_caches()
            other = service.run(scenarios, manifest=manifest)  # method="auto"
        # different method -> different request keys -> nothing resumed
        assert other.stats.resumed == 0

    def test_store_loss_forces_recompute_despite_manifest(self, tmp_path):
        scenarios = _scenarios()
        manifest = str(tmp_path / "manifest.json")
        with _service(tmp_path) as service:
            service.run(scenarios, manifest=manifest)
            service.store.clear()  # the store lost everything
            clear_caches()
            report = service.run(scenarios, manifest=manifest)
        # the manifest says done, but the store is the source of truth
        assert report.stats.computed == 3
        assert report.stats.resumed == 0
        assert all(r.report is not None for r in report.results)


class TestReviewRegressions:
    def test_validate_false_reaches_workers_and_store(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0))
        with _service(tmp_path, validate=False) as service:
            report = service.run(scenarios)
            assert all(r.report.certificate is None for r in report.results)
            clear_caches()
            warm = service.run(scenarios)
        # warm hits come from entries stored under the validate=False key
        # and are certificate-free, matching a fresh validate=False solve
        assert warm.stats.store_hits == 2
        assert all(r.report.certificate is None for r in warm.results)

    def test_duplicate_slots_do_not_alias(self, tmp_path):
        scenarios = _scenarios((1.0, 2.0, 1.0))
        with _service(tmp_path) as service:
            cold = service.run(scenarios)
            clear_caches()
            warm = service.run(scenarios)
        for report in (cold, warm):
            first, dup = report.results[0], report.results[2]
            assert first.key == dup.key
            assert first.report is not dup.report
            first.report.allocation["mutated"] = 1.0
            assert "mutated" not in dup.report.allocation

    def test_store_write_failure_does_not_fail_solve(self, tmp_path, monkeypatch):
        import repro.engine.store as store_mod

        store = SolutionStore(str(tmp_path / "failing"))

        def _disk_full(path, payload, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store_mod, "atomic_write_json", _disk_full)
        monkeypatch.setattr(store_mod, "_atomic_write_bytes", _disk_full)
        assert not store.put("aa" + "0" * 62, {"v": 1})  # skipped, not raised
        assert store.info()["skipped_writes"] == 1
        # the two-tier solve path survives the same failure
        set_solution_store(store)
        report = solve(_scenarios((1.0,))[0])
        assert report.makespan >= 0


class TestSweepAnalysis:
    def test_sweep_table_handles_infeasible_scenarios(self, tmp_path):
        import math

        from repro.analysis import render_sweep_table, summarize_sweep

        dag = _chain_dag()
        # target below what even full resourcing achieves -> makespan = inf
        scenarios = [MinResourceProblem(dag, 0.5), MinResourceProblem(dag, 9.0)]
        with _service(tmp_path) as service:
            report = service.run(scenarios)
        assert any(math.isinf(r.report.makespan) for r in report.results)
        # both the live-sweep and the from-store paths must render, not raise
        assert "solver id" in render_sweep_table(report)
        assert "solver id" in render_sweep_table(service.store)
        summary = summarize_sweep(service.store)
        assert summary  # at least one solver row
        # the shared number renderer must survive non-finite values
        from repro.analysis import format_float
        assert format_float(math.inf) == "inf"
        assert format_float(math.nan) == "nan"


class TestSweepWithCustomSolver:
    def test_runtime_registered_solver_in_thread_pool(self, tmp_path):
        from repro.core.problem import TradeoffSolution

        @register_solver("test-fixed", summary="fixed answer",
                         objectives=(MIN_MAKESPAN,), kind="baseline",
                         theorem="-", guarantee="none", priority=997,
                         can_solve=lambda p, s, lim: True)
        def _fixed(problem, structure, limits, **options):
            return TradeoffSolution(makespan=1.0, budget_used=0.0,
                                    algorithm="test-fixed")

        try:
            scenarios = _scenarios((1.0, 2.0))
            with _service(tmp_path) as service:
                report = service.run(scenarios, "test-fixed")
            assert all(r.report.solver_id == "test-fixed" for r in report.results)
        finally:
            unregister_solver("test-fixed")
