"""Tests for the shared utility helpers."""

from __future__ import annotations


import pytest
from hypothesis import given, strategies as st

from repro.utils.ordering import (
    all_ancestors,
    all_descendants,
    is_acyclic,
    longest_path_lengths,
    topological_order,
)
from repro.utils.validation import (
    ValidationError,
    check_non_negative,
    check_open_unit_interval,
    check_positive,
    check_probability,
    check_type,
    require,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError):
            require(False, "boom")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        assert check_non_negative(3.5, "x") == 3.5
        with pytest.raises(ValidationError):
            check_non_negative(-1, "x")
        with pytest.raises(ValidationError):
            check_non_negative("a", "x")  # type: ignore[arg-type]
        with pytest.raises(ValidationError):
            check_non_negative(float("nan"), "x")

    def test_check_positive(self):
        assert check_positive(1, "x") == 1
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_check_open_unit_interval(self):
        assert check_open_unit_interval(0.25, "alpha") == 0.25
        for bad in [0, 1, -0.1, 2]:
            with pytest.raises(ValidationError):
                check_open_unit_interval(bad, "alpha")

    def test_check_type(self):
        assert check_type(3, int, "x") == 3
        with pytest.raises(ValidationError):
            check_type(3, str, "x")


class TestOrdering:
    def test_topological_order(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]
        order = topological_order(nodes, edges)
        assert order.index("a") < order.index("b") < order.index("c")
        assert order.index("d") < order.index("c")

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_order(["a", "b"], [("a", "b"), ("b", "a")])
        assert not is_acyclic(["a", "b"], [("a", "b"), ("b", "a")])
        assert is_acyclic(["a", "b"], [("a", "b")])

    def test_longest_path_lengths(self):
        nodes = ["s", "a", "b", "t"]
        edges = [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")]
        weights = {("s", "a"): 1, ("a", "t"): 5, ("s", "b"): 2, ("b", "t"): 2}
        dist = longest_path_lengths(nodes, edges, lambda u, v: weights[(u, v)])
        assert dist["t"] == 6

    def test_longest_path_with_node_weights(self):
        nodes = ["s", "a", "t"]
        edges = [("s", "a"), ("a", "t")]
        dist = longest_path_lengths(nodes, edges, lambda u, v: 0.0,
                                    node_weight=lambda v: {"s": 0, "a": 3, "t": 1}[v])
        assert dist["t"] == 4

    def test_ancestors_descendants(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("b", "c"), ("a", "d")]
        assert all_ancestors("c", nodes, edges) == {"a", "b"}
        assert all_descendants("a", nodes, edges) == {"b", "c", "d"}
        assert all_ancestors("a", nodes, edges) == set()

    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=15))
    def test_topological_order_respects_edges(self, raw_edges):
        nodes = list(range(7))
        edges = [(u, v) for u, v in raw_edges if u < v]  # force acyclicity
        order = topological_order(nodes, edges)
        position = {n: i for i, n in enumerate(order)}
        assert all(position[u] < position[v] for u, v in edges)
