#!/usr/bin/env python
"""Intra-repo markdown link checker (CI gate for docs/ and README).

Scans README.md and every markdown file under docs/ for inline links and
images, and fails (exit 1) when a *relative* link points at a file that
does not exist -- or, for links into markdown files, at a heading anchor
that does not exist.  External links (http/https/mailto) are not fetched.

Run from anywhere:  python tools/check_links.py [extra.md ...]
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) / ![alt](target).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)           # inline formatting
    text = re.sub(r"[^\w\- ]", "", text)          # punctuation
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    content = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match) for match in HEADING_RE.findall(content)}


def check_file(path: pathlib.Path) -> List[Tuple[str, str]]:
    """Return ``(link, reason)`` pairs for every broken link in ``path``."""
    content = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    broken: List[Tuple[str, str]] = []
    for target in LINK_RE.findall(content):
        if SCHEME_RE.match(target):
            continue  # external (http:, https:, mailto:, ...)
        raw_path, _, fragment = target.partition("#")
        if not raw_path:  # same-file anchor
            destination = path
        else:
            destination = (path.parent / raw_path).resolve()
            if not destination.exists():
                broken.append((target, "file not found"))
                continue
        if fragment and destination.suffix == ".md" and destination.is_file():
            if fragment not in anchors_of(destination):
                broken.append((target, f"no heading anchor #{fragment}"))
    return broken


def main(argv: List[str]) -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("**/*.md"))
    files += [pathlib.Path(arg).resolve() for arg in argv]

    failures = 0
    for path in files:
        if not path.exists():
            print(f"MISSING FILE: {path}")
            failures += 1
            continue
        try:
            display = path.relative_to(REPO_ROOT)
        except ValueError:
            display = path
        for link, reason in check_file(path):
            print(f"{display}: broken link '{link}' ({reason})")
            failures += 1
    checked = len(files)
    if failures:
        print(f"\n{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"all intra-repo links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
