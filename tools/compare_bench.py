#!/usr/bin/env python
"""Benchmark-trend gate: compare current quick-run JSONs against baselines.

CI's ``engine-benchmark`` job runs every quick benchmark with ``--json``
and then calls this tool, which compares the produced artifacts against
the committed baselines in ``benchmarks/baselines/`` and **fails (exit 1)
on a regression beyond each metric's tolerance** (default 25%), printing a
delta table either way.

Baselines deliberately track *machine-independent* metrics -- speedup
ratios, dedup/cache counts, boolean gates -- never raw wall-clock seconds
(CI runners differ too much for absolute times to gate on).  A baseline
file looks like::

    {
      "artifact": "async_service.json",
      "metrics": [
        {"name": "speedup", "direction": "higher", "value": 1.6,
         "max_regression": 0.25},
        {"name": "async_computed", "direction": "lower", "value": 10,
         "max_regression": 0.0},
        {"name": "unique", "direction": "exact", "value": 10},
        {"name": "ok", "direction": "exact", "value": true},
        {"name": "warm_vs_map_speedup", "direction": "higher", "value": 3.0,
         "expr": ["ratio", "t_portfolio_map_s", "t_warm_sweep_s"]}
      ]
    }

* ``direction: "higher"`` -- the metric regressed if it *dropped* more
  than ``max_regression`` (relative) below the baseline value;
* ``direction: "lower"`` -- regressed if it *rose* more than
  ``max_regression`` above the baseline;
* ``direction: "exact"`` -- regressed on any difference;
* ``expr: ["ratio", a, b]`` -- the current value is computed as
  ``artifact[a] / artifact[b]`` instead of read directly (how committed
  baselines stay time-free while still gating on timing *ratios*).

Improvements beyond the baseline never fail; refresh the baseline JSONs
when a PR legitimately moves a metric (they are plain committed files).

With ``--write-trajectory PATH`` the tool additionally consolidates every
compared artifact plus the per-metric verdicts into one JSON file -- the
perf-history entry committed at the repo root (``BENCH_<n>.json``) so
future PRs can diff the whole benchmark surface in one place.  ``--label``
names the entry (defaults to the trajectory file's stem).

Usage: python tools/compare_bench.py [--baselines DIR] [--current DIR]
                                     [--max-regression FRACTION]
                                     [--write-trajectory PATH] [--label NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

DEFAULT_BASELINES = os.path.join("benchmarks", "baselines")
DEFAULT_CURRENT = "bench-artifacts"
DEFAULT_MAX_REGRESSION = 0.25


class GateError(Exception):
    """A baseline/artifact problem that must fail the gate loudly."""


def load_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            blob = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"cannot read {path}: {exc}") from exc
    if not isinstance(blob, dict):
        raise GateError(f"{path}: expected a JSON object")
    return blob


def current_value(metric: Dict[str, Any], artifact: Dict[str, Any],
                  artifact_name: str) -> Any:
    expr = metric.get("expr")
    if expr is None:
        name = metric["name"]
        if name not in artifact:
            raise GateError(f"{artifact_name}: missing metric {name!r}")
        return artifact[name]
    if (not isinstance(expr, list) or len(expr) != 3
            or expr[0] != "ratio"):
        raise GateError(f"unsupported expr {expr!r} (only ['ratio', a, b])")
    _, numerator, denominator = expr
    for field in (numerator, denominator):
        if field not in artifact:
            raise GateError(f"{artifact_name}: missing field {field!r} "
                            f"for expr metric {metric['name']!r}")
    denominator_value = float(artifact[denominator])
    if denominator_value == 0:
        raise GateError(f"{artifact_name}: zero denominator in "
                        f"{metric['name']!r}")
    return float(artifact[numerator]) / denominator_value


def judge(metric: Dict[str, Any], current: Any,
          default_tolerance: float) -> Tuple[bool, str]:
    """Return ``(regressed, delta description)`` for one metric."""
    baseline = metric["value"]
    direction = metric.get("direction", "higher")
    tolerance = float(metric.get("max_regression", default_tolerance))
    if direction == "exact":
        return current != baseline, ("=" if current == baseline else "differs")
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        raise GateError(f"metric {metric['name']!r}: non-numeric current "
                        f"value {current!r} for direction {direction!r}")
    base = float(baseline)
    if base == 0:
        # Relative deltas are undefined at a zero baseline; gate on the
        # absolute value moving in the bad direction beyond the tolerance.
        delta = float(current) - base if direction == "lower" else base - float(current)
        return delta > tolerance, f"{current!r} vs 0"
    if direction == "higher":
        change = (base - float(current)) / abs(base)
    elif direction == "lower":
        change = (float(current) - base) / abs(base)
    else:
        raise GateError(f"metric {metric['name']!r}: unknown direction "
                        f"{direction!r}")
    return change > tolerance, f"{-change:+.1%}" if direction == "higher" \
        else f"{change:+.1%}"


def format_row(cells: List[str], widths: List[int]) -> str:
    return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def write_trajectory(path: str, label: str, rows: List[List[str]],
                     artifacts: Dict[str, Dict[str, Any]],
                     failures: int) -> None:
    """Consolidate one compare run into a committed perf-history entry."""
    entry = {
        "label": label,
        "gate": "fail" if failures else "pass",
        "regressions": failures,
        "metrics": [
            {"benchmark": row[0], "metric": row[1], "baseline": row[2],
             "current": row[3], "delta": row[4], "status": row[6]}
            for row in rows
        ],
        "artifacts": artifacts,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote trajectory entry {path}")


def compare(baseline_dir: str, current_dir: str,
            default_tolerance: float, trajectory: Optional[str] = None,
            label: Optional[str] = None) -> int:
    try:
        names = sorted(name for name in os.listdir(baseline_dir)
                       if name.endswith(".json"))
    except OSError as exc:
        print(f"compare_bench: cannot list {baseline_dir}: {exc}")
        return 2
    if not names:
        print(f"compare_bench: no baselines in {baseline_dir}")
        return 2

    # Resolve every baseline -> artifact pair up front and fail on the
    # FULL list of missing artifacts: a quick-bench step that silently
    # skipped would otherwise drop its metrics from the table (and from
    # the --write-trajectory entry) one file at a time.
    pairs: List[Tuple[str, Dict[str, Any], str]] = []
    missing: List[str] = []
    for name in names:
        baseline = load_json(os.path.join(baseline_dir, name))
        artifact_name = baseline.get("artifact", name)
        artifact_path = os.path.join(current_dir, artifact_name)
        if os.path.exists(artifact_path):
            pairs.append((name, baseline, artifact_path))
        else:
            missing.append(f"{artifact_path} (baseline {name})")
    if missing:
        raise GateError(
            f"{len(missing)} baseline(s) have no benchmark artifact -- a "
            f"quick-bench run was skipped or its --json path is wrong; the "
            f"trajectory would silently lose these metrics:\n  "
            + "\n  ".join(missing))

    rows: List[List[str]] = []
    artifacts: Dict[str, Dict[str, Any]] = {}
    failures = 0
    for name, baseline, artifact_path in pairs:
        artifact_name = baseline.get("artifact", name)
        artifact = load_json(artifact_path)
        artifacts[artifact_name.replace(".json", "")] = artifact
        metrics = baseline.get("metrics")
        if not isinstance(metrics, list) or not metrics:
            raise GateError(f"{name}: baseline needs a non-empty 'metrics' list")
        for metric in metrics:
            current = current_value(metric, artifact, artifact_name)
            regressed, delta = judge(metric, current, default_tolerance)
            failures += int(regressed)
            limit = metric.get("max_regression", default_tolerance)
            rows.append([
                artifact_name.replace(".json", ""),
                str(metric["name"]),
                _render(metric["value"]),
                _render(current),
                delta,
                ("exact" if metric.get("direction") == "exact"
                 else f"<={float(limit):.0%}"),
                "FAIL" if regressed else "ok",
            ])

    header = ["benchmark", "metric", "baseline", "current", "delta",
              "tolerated", "status"]
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              for i in range(len(header))]
    print(format_row(header, widths))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(format_row(row, widths))
    if trajectory:
        stem = os.path.splitext(os.path.basename(trajectory))[0]
        write_trajectory(trajectory, label or stem, rows, artifacts, failures)
    if failures:
        print(f"\ncompare_bench: {failures} metric(s) regressed beyond "
              f"tolerance -- failing the trend gate")
        return 1
    print(f"\ncompare_bench: all {len(rows)} tracked metrics within tolerance")
    return 0


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", default=DEFAULT_BASELINES)
    parser.add_argument("--current", default=DEFAULT_CURRENT)
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="default relative tolerance (default 0.25)")
    parser.add_argument("--write-trajectory", default=None, metavar="PATH",
                        help="consolidate artifacts + verdicts into one "
                             "perf-history JSON entry")
    parser.add_argument("--label", default=None,
                        help="trajectory entry label (default: PATH stem)")
    args = parser.parse_args(argv)
    try:
        return compare(args.baselines, args.current, args.max_regression,
                       trajectory=args.write_trajectory, label=args.label)
    except GateError as exc:
        print(f"compare_bench: {exc}")
        return 2


if __name__ == "__main__":
    sys.exit(main())
